//! Gate types and `b`-separability (Definition 1 of the paper).
//!
//! A function `f : {0,1}^m → {0,1}` is *`b`-separable* if for every partition
//! of its inputs into groups there are `b`-bit summaries `g_j` of each group
//! and a combiner `h` with `f(x) = h(g_1(x_{I_1}), …, g_k(x_{I_k}))`. The
//! circuit-to-clique simulation of Theorem 2 only needs, for each gate, a way
//! to compute a short summary of the input bits a single player owns and a
//! way to combine the summaries. [`GateKind`] provides exactly that interface
//! for the gate families the paper discusses:
//!
//! * `AND`, `OR`, `NOT` — 1-separable,
//! * `XOR` (parity) and `MOD_m` — `⌈log₂ m⌉`-separable (2-valued summaries
//!   for parity),
//! * unweighted `THR_t` and `MAJ` — `O(log fan-in)`-separable,
//! * weighted threshold gates — `O(log(total weight))`-separable.

/// The Boolean function computed by a gate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GateKind {
    /// An input of the circuit (no predecessors).
    Input,
    /// A constant.
    Const(bool),
    /// Unbounded fan-in AND.
    And,
    /// Unbounded fan-in OR.
    Or,
    /// Negation (fan-in 1).
    Not,
    /// Unbounded fan-in XOR (parity; equivalently a `MOD₂` sum bit).
    Xor,
    /// `MOD_m` gate: outputs 1 iff the number of 1-inputs is ≡ 0 (mod m).
    Mod(u64),
    /// Unweighted threshold: outputs 1 iff at least `t` inputs are 1.
    Threshold(u64),
    /// Majority: outputs 1 iff more than half of the inputs are 1.
    Majority,
    /// Weighted threshold `Σ wᵢxᵢ ≥ t` with non-negative integer weights
    /// (indexed by position in the gate's input list).
    WeightedThreshold {
        /// Per-input non-negative weights.
        weights: Vec<u64>,
        /// The threshold `t`.
        threshold: u64,
    },
}

impl GateKind {
    /// Evaluates the gate on its ordered input values.
    ///
    /// # Panics
    ///
    /// Panics if the number of inputs is invalid for the gate kind
    /// (`Not` requires exactly one, `WeightedThreshold` requires one value
    /// per weight, `Input` takes none, `Mod(0)` is rejected at construction
    /// sites via [`Self::validate_fan_in`]).
    pub fn eval(&self, inputs: &[bool]) -> bool {
        self.eval_iter(inputs.iter().copied())
    }

    /// Evaluates the gate on a stream of ordered input values without
    /// materialising them into a slice (the allocation-free path used by
    /// [`crate::Circuit::evaluate_all`]).
    ///
    /// # Panics
    ///
    /// Same contract as [`Self::eval`].
    pub fn eval_iter(&self, mut inputs: impl Iterator<Item = bool>) -> bool {
        match self {
            GateKind::Input => panic!("input gates are evaluated by assignment, not eval()"),
            GateKind::Const(value) => *value,
            GateKind::And => inputs.all(|x| x),
            GateKind::Or => inputs.any(|x| x),
            GateKind::Not => {
                let first = inputs.next();
                assert!(
                    first.is_some() && inputs.next().is_none(),
                    "NOT gate takes exactly one input"
                );
                !first.expect("checked above")
            }
            GateKind::Xor => inputs.fold(false, |acc, x| acc ^ x),
            GateKind::Mod(m) => {
                assert!(*m >= 2, "MOD_m needs m >= 2");
                (inputs.filter(|&x| x).count() as u64).is_multiple_of(*m)
            }
            GateKind::Threshold(t) => (inputs.filter(|&x| x).count() as u64) >= *t,
            GateKind::Majority => {
                let (ones, total) = inputs.fold((0usize, 0usize), |(ones, total), x| {
                    (ones + usize::from(x), total + 1)
                });
                2 * ones > total
            }
            GateKind::WeightedThreshold { weights, threshold } => {
                let mut sum = 0u64;
                let mut count = 0usize;
                for x in inputs {
                    assert!(
                        count < weights.len(),
                        "weighted threshold needs one weight per input"
                    );
                    if x {
                        sum += weights[count];
                    }
                    count += 1;
                }
                assert_eq!(
                    count,
                    weights.len(),
                    "weighted threshold needs one weight per input"
                );
                sum >= *threshold
            }
        }
    }

    /// Returns `true` if the gate is a plain `F₂`/lattice word operation
    /// (`AND`/`OR`/`XOR`/`NOT`/constant) that [`crate::Circuit::evaluate_batch`]
    /// can evaluate 64 assignments at a time with one machine word per gate.
    pub fn is_word_parallel(&self) -> bool {
        matches!(
            self,
            GateKind::Const(_) | GateKind::And | GateKind::Or | GateKind::Not | GateKind::Xor
        )
    }

    /// Checks that `fan_in` is a legal fan-in for this gate kind.
    pub fn validate_fan_in(&self, fan_in: usize) -> bool {
        match self {
            GateKind::Input | GateKind::Const(_) => fan_in == 0,
            GateKind::Not => fan_in == 1,
            GateKind::Mod(m) => *m >= 2,
            GateKind::WeightedThreshold { weights, .. } => weights.len() == fan_in,
            _ => true,
        }
    }

    /// The number of summary bits (`b` of Definition 1) sufficient for this
    /// gate at the given fan-in, i.e. the gate is
    /// `separability_bits(fan_in)`-separable.
    pub fn separability_bits(&self, fan_in: usize) -> usize {
        match self {
            GateKind::Input | GateKind::Const(_) => 0,
            GateKind::And | GateKind::Or | GateKind::Not => 1,
            GateKind::Xor => 1,
            GateKind::Mod(m) => bits_for(*m),
            GateKind::Threshold(t) => bits_for((*t + 1).min(fan_in as u64 + 1)),
            GateKind::Majority => bits_for(fan_in as u64 + 1),
            GateKind::WeightedThreshold { threshold, .. } => bits_for(*threshold + 1),
        }
    }

    /// Computes the `b`-bit summary of the inputs a single player owns, given
    /// as `(position, value)` pairs (positions index the gate's input list,
    /// which is only relevant for weighted gates).
    pub fn summary(&self, part: &[(usize, bool)]) -> u64 {
        let ones = || part.iter().filter(|&&(_, v)| v).count() as u64;
        match self {
            GateKind::Input | GateKind::Const(_) => 0,
            GateKind::And => u64::from(part.iter().all(|&(_, v)| v)),
            GateKind::Or | GateKind::Not => u64::from(part.iter().any(|&(_, v)| v)),
            GateKind::Xor => ones() % 2,
            GateKind::Mod(m) => ones() % m,
            GateKind::Threshold(t) => ones().min(*t),
            GateKind::Majority => ones(),
            GateKind::WeightedThreshold { weights, threshold } => part
                .iter()
                .filter(|&&(_, v)| v)
                .map(|&(pos, _)| weights[pos])
                .sum::<u64>()
                .min(*threshold),
        }
    }

    /// Combines the per-player summaries into the gate's output (`h` of
    /// Definition 1). `fan_in` is the gate's total fan-in (needed by
    /// majority).
    pub fn combine(&self, summaries: &[u64], fan_in: usize) -> bool {
        match self {
            GateKind::Input => panic!("input gates have no combiner"),
            GateKind::Const(value) => *value,
            GateKind::And => summaries.iter().all(|&s| s == 1),
            GateKind::Or | GateKind::Not => {
                let any = summaries.contains(&1);
                if matches!(self, GateKind::Not) {
                    !any
                } else {
                    any
                }
            }
            GateKind::Xor => summaries.iter().sum::<u64>() % 2 == 1,
            GateKind::Mod(m) => summaries.iter().sum::<u64>() % m == 0,
            GateKind::Threshold(t) => summaries.iter().sum::<u64>() >= *t,
            GateKind::Majority => 2 * summaries.iter().sum::<u64>() > fan_in as u64,
            GateKind::WeightedThreshold { threshold, .. } => {
                summaries.iter().sum::<u64>() >= *threshold
            }
        }
    }

    /// A short name used in debug output.
    pub fn name(&self) -> String {
        match self {
            GateKind::Input => "IN".into(),
            GateKind::Const(v) => format!("CONST({})", u8::from(*v)),
            GateKind::And => "AND".into(),
            GateKind::Or => "OR".into(),
            GateKind::Not => "NOT".into(),
            GateKind::Xor => "XOR".into(),
            GateKind::Mod(m) => format!("MOD{m}"),
            GateKind::Threshold(t) => format!("THR{t}"),
            GateKind::Majority => "MAJ".into(),
            GateKind::WeightedThreshold { threshold, .. } => format!("WTHR{threshold}"),
        }
    }
}

fn bits_for(universe: u64) -> usize {
    if universe <= 1 {
        1
    } else {
        (64 - (universe - 1).leading_zeros()) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_inputs(rng: &mut impl Rng, len: usize) -> Vec<bool> {
        (0..len).map(|_| rng.gen_bool(0.5)).collect()
    }

    /// Splits inputs into contiguous chunks, computes summaries, and combines
    /// them — the separable evaluation path of Definition 1.
    fn separable_eval(kind: &GateKind, inputs: &[bool], parts: usize) -> bool {
        let chunk = inputs.len().div_ceil(parts.max(1)).max(1);
        let summaries: Vec<u64> = inputs
            .chunks(chunk)
            .enumerate()
            .map(|(c, vals)| {
                let indexed: Vec<(usize, bool)> = vals
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| (c * chunk + i, v))
                    .collect();
                kind.summary(&indexed)
            })
            .collect();
        kind.combine(&summaries, inputs.len())
    }

    #[test]
    fn direct_evaluation_of_each_kind() {
        assert!(GateKind::And.eval(&[true, true, true]));
        assert!(!GateKind::And.eval(&[true, false]));
        assert!(GateKind::And.eval(&[]));
        assert!(GateKind::Or.eval(&[false, true]));
        assert!(!GateKind::Or.eval(&[]));
        assert!(GateKind::Not.eval(&[false]));
        assert!(GateKind::Xor.eval(&[true, true, true]));
        assert!(!GateKind::Xor.eval(&[true, true]));
        assert!(GateKind::Mod(3).eval(&[true, true, true]));
        assert!(!GateKind::Mod(3).eval(&[true, true]));
        assert!(GateKind::Mod(2).eval(&[]));
        assert!(GateKind::Threshold(2).eval(&[true, false, true]));
        assert!(!GateKind::Threshold(3).eval(&[true, false, true]));
        assert!(GateKind::Majority.eval(&[true, true, false]));
        assert!(!GateKind::Majority.eval(&[true, false]));
        assert!(GateKind::Const(true).eval(&[]));
        let wt = GateKind::WeightedThreshold {
            weights: vec![5, 1, 1],
            threshold: 5,
        };
        assert!(wt.eval(&[true, false, false]));
        assert!(!wt.eval(&[false, true, true]));
    }

    #[test]
    fn separable_evaluation_agrees_with_direct() {
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let kinds: Vec<GateKind> = vec![
            GateKind::And,
            GateKind::Or,
            GateKind::Xor,
            GateKind::Mod(2),
            GateKind::Mod(3),
            GateKind::Mod(6),
            GateKind::Threshold(4),
            GateKind::Majority,
            GateKind::WeightedThreshold {
                weights: (0..12).map(|i| (i % 3) + 1).collect(),
                threshold: 9,
            },
        ];
        for kind in &kinds {
            for _ in 0..50 {
                let inputs = random_inputs(&mut rng, 12);
                let direct = kind.eval(&inputs);
                for parts in [1usize, 2, 3, 5, 12] {
                    assert_eq!(
                        separable_eval(kind, &inputs, parts),
                        direct,
                        "{} disagreed on {:?} with {} parts",
                        kind.name(),
                        inputs,
                        parts
                    );
                }
            }
        }
    }

    #[test]
    fn separability_bit_budgets() {
        assert_eq!(GateKind::And.separability_bits(1000), 1);
        assert_eq!(GateKind::Or.separability_bits(1000), 1);
        assert_eq!(GateKind::Xor.separability_bits(1000), 1);
        assert_eq!(GateKind::Mod(6).separability_bits(1000), 3);
        // MOD_6 is O(1)-separable regardless of fan-in (as used in Section 2
        // for the CC/ACC discussion).
        assert_eq!(
            GateKind::Mod(6).separability_bits(10),
            GateKind::Mod(6).separability_bits(1_000_000)
        );
        // Unweighted threshold gates are Θ(log n)-separable.
        assert!(GateKind::Majority.separability_bits(1024) <= 11);
        assert!(GateKind::Threshold(1024).separability_bits(1024) <= 11);
        assert_eq!(
            GateKind::WeightedThreshold {
                weights: vec![1 << 20; 4],
                threshold: 1 << 20
            }
            .separability_bits(4),
            21
        );
    }

    #[test]
    fn summaries_fit_in_the_declared_bit_budget() {
        let mut rng = ChaCha8Rng::seed_from_u64(32);
        let kinds = vec![
            GateKind::And,
            GateKind::Or,
            GateKind::Xor,
            GateKind::Mod(5),
            GateKind::Threshold(7),
            GateKind::Majority,
        ];
        for kind in &kinds {
            for _ in 0..20 {
                let inputs = random_inputs(&mut rng, 16);
                let indexed: Vec<(usize, bool)> = inputs.iter().copied().enumerate().collect();
                let summary = kind.summary(&indexed);
                let bits = kind.separability_bits(16);
                assert!(
                    summary < (1u64 << bits),
                    "{}: summary {summary} does not fit in {bits} bits",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn fan_in_validation() {
        assert!(GateKind::Input.validate_fan_in(0));
        assert!(!GateKind::Input.validate_fan_in(1));
        assert!(GateKind::Not.validate_fan_in(1));
        assert!(!GateKind::Not.validate_fan_in(2));
        assert!(GateKind::And.validate_fan_in(100));
        assert!(!GateKind::Mod(1).validate_fan_in(3));
        assert!(GateKind::WeightedThreshold {
            weights: vec![1, 2],
            threshold: 2
        }
        .validate_fan_in(2));
        assert!(!GateKind::WeightedThreshold {
            weights: vec![1, 2],
            threshold: 2
        }
        .validate_fan_in(3));
    }

    #[test]
    fn names_are_informative() {
        assert_eq!(GateKind::Mod(6).name(), "MOD6");
        assert_eq!(GateKind::Threshold(3).name(), "THR3");
        assert_eq!(GateKind::Const(false).name(), "CONST(0)");
    }

    #[test]
    #[should_panic(expected = "assignment")]
    fn eval_of_input_gate_panics() {
        let _ = GateKind::Input.eval(&[]);
    }
}
