//! Ready-made circuits for the gate families discussed in Section 2.
//!
//! These are the workloads of experiment E1: shallow circuits over `n²`
//! inputs made of `b`-separable gates (parity/`MOD_m`/threshold/majority),
//! which Theorem 2 simulates in `O(depth)` rounds of `CLIQUE-UCAST`.

use crate::circuit::{Circuit, GateId};
use crate::gate::GateKind;

/// A single unbounded fan-in XOR (parity) gate over `n` inputs: depth 1.
pub fn parity(n: usize) -> Circuit {
    single_gate(n, GateKind::Xor)
}

/// A single `MOD_m` gate over `n` inputs: outputs 1 iff the number of ones is
/// divisible by `m`. Depth 1.
///
/// # Panics
///
/// Panics if `m < 2`.
pub fn mod_m(n: usize, m: u64) -> Circuit {
    assert!(m >= 2, "MOD_m needs m >= 2");
    single_gate(n, GateKind::Mod(m))
}

/// A single majority gate over `n` inputs. Depth 1.
pub fn majority(n: usize) -> Circuit {
    single_gate(n, GateKind::Majority)
}

/// A single unweighted threshold gate `THR_t` over `n` inputs. Depth 1.
pub fn threshold(n: usize, t: u64) -> Circuit {
    single_gate(n, GateKind::Threshold(t))
}

fn single_gate(n: usize, kind: GateKind) -> Circuit {
    let mut c = Circuit::new();
    let xs = c.add_inputs(n);
    let out = c.add_gate(kind, &xs);
    c.mark_output(out);
    c
}

/// A balanced tree of XOR gates with the given arity, computing the parity of
/// `n` inputs in depth `⌈log_arity n⌉`.
///
/// # Panics
///
/// Panics if `arity < 2` or `n == 0`.
pub fn parity_tree(n: usize, arity: usize) -> Circuit {
    assert!(arity >= 2, "tree arity must be at least 2");
    assert!(n > 0, "parity of zero inputs is undefined here");
    let mut c = Circuit::new();
    let mut frontier = c.add_inputs(n);
    while frontier.len() > 1 {
        frontier = frontier
            .chunks(arity)
            .map(|chunk| {
                if chunk.len() == 1 {
                    chunk[0]
                } else {
                    c.add_gate(GateKind::Xor, chunk)
                }
            })
            .collect();
    }
    c.mark_output(frontier[0]);
    c
}

/// The "exactly `k` ones" predicate as a depth-3 circuit of threshold gates:
/// `THR_k(x) AND NOT THR_{k+1}(x)`.
pub fn exactly_k(n: usize, k: u64) -> Circuit {
    let mut c = Circuit::new();
    let xs = c.add_inputs(n);
    let at_least_k = c.add_gate(GateKind::Threshold(k), &xs);
    let at_least_k1 = c.add_gate(GateKind::Threshold(k + 1), &xs);
    let not_more = c.add_gate(GateKind::Not, &[at_least_k1]);
    let out = c.add_gate(GateKind::And, &[at_least_k, not_more]);
    c.mark_output(out);
    c
}

/// A depth-2 AND-of-ORs (monotone CNF): clause `j` is the OR of the listed
/// input indices; the output is the AND of all clauses.
///
/// # Panics
///
/// Panics if a clause references an input `>= n`.
pub fn and_of_ors(n: usize, clauses: &[Vec<usize>]) -> Circuit {
    let mut c = Circuit::new();
    let xs = c.add_inputs(n);
    let mut clause_gates = Vec::with_capacity(clauses.len());
    for clause in clauses {
        let literals: Vec<GateId> = clause
            .iter()
            .map(|&i| {
                assert!(i < n, "clause literal {i} out of range");
                xs[i]
            })
            .collect();
        clause_gates.push(c.add_gate(GateKind::Or, &literals));
    }
    let out = c.add_gate(GateKind::And, &clause_gates);
    c.mark_output(out);
    c
}

/// The inner product mod 2 of two `n`-bit vectors (inputs `x₀…x_{n−1}` then
/// `y₀…y_{n−1}`): `⊕_i (x_i ∧ y_i)`. Depth 2, `3n` wires.
pub fn inner_product_mod2(n: usize) -> Circuit {
    let mut c = Circuit::new();
    let xs = c.add_inputs(n);
    let ys = c.add_inputs(n);
    let products: Vec<GateId> = (0..n)
        .map(|i| c.add_gate(GateKind::And, &[xs[i], ys[i]]))
        .collect();
    let out = c.add_gate(GateKind::Xor, &products);
    c.mark_output(out);
    c
}

/// A depth-2 `CC[m]` circuit: a `MOD_m` gate of `MOD_m` gates over random-ish
/// fixed wiring (each bottom gate reads a contiguous block of `block` inputs).
/// Used to exercise the ACC/CC discussion of Section 2 in experiment E1.
pub fn mod_of_mods(n: usize, m: u64, block: usize) -> Circuit {
    assert!(m >= 2, "MOD_m needs m >= 2");
    assert!(block >= 1, "block size must be positive");
    let mut c = Circuit::new();
    let xs = c.add_inputs(n);
    let bottom: Vec<GateId> = xs
        .chunks(block)
        .map(|chunk| c.add_gate(GateKind::Mod(m), chunk))
        .collect();
    let out = c.add_gate(GateKind::Mod(m), &bottom);
    c.mark_output(out);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits_of(mask: u64, n: usize) -> Vec<bool> {
        (0..n).map(|i| mask >> i & 1 == 1).collect()
    }

    #[test]
    fn parity_circuits_agree_with_popcount() {
        for n in [1usize, 3, 7] {
            let flat = parity(n);
            let tree = parity_tree(n, 2);
            let tree3 = parity_tree(n, 3);
            for mask in 0..(1u64 << n) {
                let input = bits_of(mask, n);
                let expected = mask.count_ones() % 2 == 1;
                assert_eq!(flat.evaluate(&input), vec![expected]);
                assert_eq!(tree.evaluate(&input), vec![expected]);
                assert_eq!(tree3.evaluate(&input), vec![expected]);
            }
        }
    }

    #[test]
    fn parity_tree_depth_is_logarithmic() {
        let c = parity_tree(64, 2);
        assert_eq!(c.depth(), 6);
        let c4 = parity_tree(64, 4);
        assert_eq!(c4.depth(), 3);
        assert_eq!(parity(64).depth(), 1);
    }

    #[test]
    fn mod_and_threshold_and_majority() {
        let c = mod_m(6, 3);
        assert_eq!(c.evaluate(&bits_of(0b000111, 6)), vec![true]);
        assert_eq!(c.evaluate(&bits_of(0b000011, 6)), vec![false]);
        let t = threshold(5, 2);
        assert_eq!(t.evaluate(&bits_of(0b10001, 5)), vec![true]);
        assert_eq!(t.evaluate(&bits_of(0b00001, 5)), vec![false]);
        let m = majority(5);
        assert_eq!(m.evaluate(&bits_of(0b00111, 5)), vec![true]);
        assert_eq!(m.evaluate(&bits_of(0b00011, 5)), vec![false]);
    }

    #[test]
    fn exactly_k_works() {
        let c = exactly_k(6, 2);
        assert_eq!(c.depth(), 3);
        for mask in 0..64u64 {
            let expected = mask.count_ones() == 2;
            assert_eq!(c.evaluate(&bits_of(mask, 6)), vec![expected]);
        }
    }

    #[test]
    fn and_of_ors_is_a_cnf() {
        let c = and_of_ors(4, &[vec![0, 1], vec![2, 3], vec![0, 3]]);
        assert_eq!(c.depth(), 2);
        // x0 ∨ x3 fails: x0 = x3 = false.
        assert_eq!(c.evaluate(&[false, true, true, false]), vec![false]);
        assert_eq!(c.evaluate(&[true, false, false, true]), vec![true]);
        assert_eq!(c.evaluate(&[false, true, true, true]), vec![true]);
        assert_eq!(c.evaluate(&[false, false, true, true]), vec![false]);
    }

    #[test]
    fn inner_product_matches_reference() {
        let n = 5;
        let c = inner_product_mod2(n);
        for xm in 0..(1u64 << n) {
            for ym in [0u64, 1, 9, 21, 31] {
                let mut input = bits_of(xm, n);
                input.extend(bits_of(ym, n));
                let expected = (xm & ym).count_ones() % 2 == 1;
                assert_eq!(c.evaluate(&input), vec![expected], "IP({xm:b},{ym:b})");
            }
        }
    }

    #[test]
    fn mod_of_mods_structure() {
        let c = mod_of_mods(12, 6, 4);
        assert_eq!(c.depth(), 2);
        assert_eq!(c.max_separability_bits(), 3);
        // All-zero input: every MOD6 gate sees 0 ones -> outputs 1 -> top
        // gate sees 3 ones -> 3 mod 6 != 0 -> false.
        assert_eq!(c.evaluate(&[false; 12]), vec![false]);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn parity_tree_rejects_arity_one() {
        let _ = parity_tree(4, 1);
    }
}
