//! # clique-circuits — bounded-depth circuits with `b`-separable gates
//!
//! The first half of Drucker, Kuhn & Oshman (PODC 2014) shows that the
//! unicast congested clique can simulate bounded-depth circuits whose gates
//! are `b`-separable (Definition 1) using `O(depth)` rounds and bandwidth
//! proportional to the circuit's wire density (Theorem 2). This crate
//! provides the circuit side of that simulation:
//!
//! * [`gate::GateKind`] — the gate families of Section 2 (AND/OR/NOT, parity,
//!   `MOD_m`, unweighted and weighted thresholds, majority) with their
//!   separability interface (per-part summaries + combiner);
//! * [`circuit::Circuit`] — DAG circuits with the paper's layering, depth and
//!   wire-count measures;
//! * [`builders`] — ready-made shallow circuits (parity trees, `MOD_m` of
//!   `MOD_m`, threshold predicates, inner product) used as simulation
//!   workloads;
//! * [`matmul`] — `F₂` matrix-multiplication circuits (naive cubic and
//!   Strassen) powering the Section 2.1 triangle-detection route.
//!
//! # Examples
//!
//! ```
//! use clique_circuits::builders::parity_tree;
//!
//! let c = parity_tree(64, 4);
//! assert_eq!(c.depth(), 3);
//! assert_eq!(c.max_separability_bits(), 1);
//! let input: Vec<bool> = (0..64).map(|i| i % 3 == 0).collect();
//! let ones = input.iter().filter(|&&b| b).count();
//! assert_eq!(c.evaluate(&input), vec![ones % 2 == 1]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builders;
pub mod circuit;
pub mod gate;
pub mod matmul;

pub use circuit::{Circuit, Gate, GateId};
pub use clique_sim::linalg::BitMatrix;
pub use gate::GateKind;
pub use matmul::{
    matmul_f2_naive, matmul_f2_reference, matmul_f2_scalar, matmul_f2_strassen, MatMulCircuit,
};
