//! Circuits as DAGs of unbounded fan-in, unbounded fan-out gates.
//!
//! The complexity measures relevant to Theorem 2 are the *depth* (number of
//! layers `L_0, …, L_D` in the paper's layering) and the *number of wires*
//! (edges of the DAG); [`Circuit`] tracks both and provides the layering
//! used by the simulation.

use crate::gate::GateKind;
use clique_sim::lane::{DefaultLane, Word};

/// Identifier of a gate within a [`Circuit`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GateId(pub usize);

impl GateId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for GateId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// A single gate: its function and its ordered list of input gates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Gate {
    /// The Boolean function computed by the gate.
    pub kind: GateKind,
    /// The gates feeding this gate (the wires `in(G)`).
    pub inputs: Vec<GateId>,
}

/// A Boolean circuit: a DAG of gates with designated inputs and outputs.
///
/// Gates must be added in topological order (every input of a gate must
/// already exist), which makes the structure acyclic by construction.
///
/// # Examples
///
/// ```
/// use clique_circuits::{Circuit, GateKind};
///
/// // (x0 AND x1) XOR x2
/// let mut c = Circuit::new();
/// let x0 = c.add_input();
/// let x1 = c.add_input();
/// let x2 = c.add_input();
/// let and = c.add_gate(GateKind::And, &[x0, x1]);
/// let out = c.add_gate(GateKind::Xor, &[and, x2]);
/// c.mark_output(out);
///
/// assert_eq!(c.evaluate(&[true, true, false]), vec![true]);
/// assert_eq!(c.depth(), 2);
/// assert_eq!(c.wire_count(), 4);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Circuit {
    gates: Vec<Gate>,
    inputs: Vec<GateId>,
    outputs: Vec<GateId>,
}

impl Circuit {
    /// Creates an empty circuit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an input gate and returns its id.
    pub fn add_input(&mut self) -> GateId {
        let id = GateId(self.gates.len());
        self.gates.push(Gate {
            kind: GateKind::Input,
            inputs: Vec::new(),
        });
        self.inputs.push(id);
        id
    }

    /// Adds `count` input gates and returns their ids.
    pub fn add_inputs(&mut self, count: usize) -> Vec<GateId> {
        (0..count).map(|_| self.add_input()).collect()
    }

    /// Adds a gate computing `kind` over the given (already existing) gates.
    ///
    /// # Panics
    ///
    /// Panics if an input id does not exist yet, or the fan-in is invalid for
    /// the gate kind.
    pub fn add_gate(&mut self, kind: GateKind, inputs: &[GateId]) -> GateId {
        let id = GateId(self.gates.len());
        for input in inputs {
            assert!(
                input.index() < id.index(),
                "gate input {input} must be added before the gate using it"
            );
        }
        assert!(
            kind.validate_fan_in(inputs.len()),
            "fan-in {} invalid for gate {}",
            inputs.len(),
            kind.name()
        );
        assert!(
            !matches!(kind, GateKind::Input),
            "use add_input() to add inputs"
        );
        self.gates.push(Gate {
            kind,
            inputs: inputs.to_vec(),
        });
        id
    }

    /// Marks a gate as a circuit output.
    ///
    /// # Panics
    ///
    /// Panics if the gate does not exist.
    pub fn mark_output(&mut self, id: GateId) {
        assert!(id.index() < self.gates.len(), "unknown gate {id}");
        self.outputs.push(id);
    }

    /// The gates, indexed by [`GateId`].
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The gate with the given id.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// The circuit inputs in creation order.
    pub fn inputs(&self) -> &[GateId] {
        &self.inputs
    }

    /// The circuit outputs in the order they were marked.
    pub fn outputs(&self) -> &[GateId] {
        &self.outputs
    }

    /// Number of gates (including inputs).
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Number of wires (edges of the DAG), the measure `N = n²·s` of
    /// Theorem 2.
    pub fn wire_count(&self) -> usize {
        self.gates.iter().map(|g| g.inputs.len()).sum()
    }

    /// The fan-out of every gate.
    pub fn fan_outs(&self) -> Vec<usize> {
        let mut out = vec![0usize; self.gates.len()];
        for gate in &self.gates {
            for input in &gate.inputs {
                out[input.index()] += 1;
            }
        }
        out
    }

    /// The weight `w(G) = |in(G)| + |out(G)|` of every gate, as used by the
    /// heavy/light classification in the proof of Theorem 2.
    pub fn gate_weights(&self) -> Vec<usize> {
        let fan_outs = self.fan_outs();
        self.gates
            .iter()
            .enumerate()
            .map(|(i, g)| g.inputs.len() + fan_outs[i])
            .collect()
    }

    /// The layering `L_0, …, L_D` of the paper: `L_0` are the gates with no
    /// inputs, and `L_r` are the gates all of whose inputs lie in strictly
    /// smaller layers.
    pub fn layers(&self) -> Vec<Vec<GateId>> {
        let n = self.gates.len();
        let mut layer_of = vec![0usize; n];
        let mut max_layer = 0usize;
        for (i, gate) in self.gates.iter().enumerate() {
            let layer = gate
                .inputs
                .iter()
                .map(|input| layer_of[input.index()] + 1)
                .max()
                .unwrap_or(0);
            layer_of[i] = layer;
            max_layer = max_layer.max(layer);
        }
        let mut layers = vec![Vec::new(); max_layer + 1];
        for i in 0..n {
            layers[layer_of[i]].push(GateId(i));
        }
        layers
    }

    /// The depth `D`: the index of the last layer (0 for an input-only
    /// circuit).
    pub fn depth(&self) -> usize {
        self.layers().len().saturating_sub(1)
    }

    /// The maximum separability bit budget over all gates — the `b` for which
    /// every gate of the circuit is `b`-separable.
    pub fn max_separability_bits(&self) -> usize {
        self.gates
            .iter()
            .map(|g| g.kind.separability_bits(g.inputs.len()))
            .max()
            .unwrap_or(0)
    }

    /// The wire density `s = ⌈wires / n²⌉` for a given player count `n`
    /// (at least 1), as used to size messages in Theorem 2.
    pub fn wire_density(&self, n: usize) -> usize {
        if n == 0 {
            return 1;
        }
        self.wire_count().div_ceil(n * n).max(1)
    }

    /// Evaluates every gate of the circuit on the given input assignment and
    /// returns all gate values.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len()` differs from the number of inputs.
    pub fn evaluate_all(&self, assignment: &[bool]) -> Vec<bool> {
        let mut values = vec![false; self.gates.len()];
        self.evaluate_all_into(assignment, &mut values);
        values
    }

    /// Evaluates every gate into the caller-provided scratch buffer, so
    /// repeated evaluations allocate nothing: the buffer is resized once and
    /// the per-gate input values are streamed straight out of it (no
    /// per-gate `Vec`).
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len()` differs from the number of inputs.
    pub fn evaluate_all_into(&self, assignment: &[bool], values: &mut Vec<bool>) {
        assert_eq!(
            assignment.len(),
            self.inputs.len(),
            "expected {} input bits, got {}",
            self.inputs.len(),
            assignment.len()
        );
        values.clear();
        values.resize(self.gates.len(), false);
        let mut next_input = 0usize;
        for i in 0..self.gates.len() {
            let gate = &self.gates[i];
            values[i] = match gate.kind {
                GateKind::Input => {
                    let v = assignment[next_input];
                    next_input += 1;
                    v
                }
                _ => gate
                    .kind
                    .eval_iter(gate.inputs.iter().map(|id| values[id.index()])),
            };
        }
    }

    /// Evaluates the circuit and returns the output values in output order.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len()` differs from the number of inputs.
    pub fn evaluate(&self, assignment: &[bool]) -> Vec<bool> {
        let values = self.evaluate_all(assignment);
        self.outputs.iter().map(|id| values[id.index()]).collect()
    }

    /// Evaluates the circuit on many assignments at once, bit-sliced: each
    /// gate holds one [`DefaultLane`] word with one bit per assignment, so
    /// every pass over the gate list evaluates up to `W::BITS` independent
    /// assignments. Word-parallel gates (`AND`/`OR`/`XOR`/`NOT`/constants —
    /// see [`GateKind::is_word_parallel`]) cost one word operation per
    /// input; counting gates fall back to per-assignment evaluation within
    /// the slice.
    ///
    /// Returns one output vector (in output order) per assignment, equal to
    /// what [`Self::evaluate`] returns on that assignment. The lane width
    /// never changes the results — see [`Self::evaluate_batch_lanes`] to
    /// pin a specific width.
    ///
    /// # Panics
    ///
    /// Panics if any assignment's length differs from the number of inputs.
    pub fn evaluate_batch(&self, assignments: &[Vec<bool>]) -> Vec<Vec<bool>> {
        self.evaluate_batch_lanes::<DefaultLane>(assignments)
    }

    /// [`Self::evaluate_batch`] with an explicit lane word `W`: up to
    /// `W::BITS` assignments per pass over the gate list. The width only
    /// affects throughput, never the results.
    ///
    /// # Panics
    ///
    /// Panics if any assignment's length differs from the number of inputs.
    pub fn evaluate_batch_lanes<W: Word>(&self, assignments: &[Vec<bool>]) -> Vec<Vec<bool>> {
        let mut results = Vec::with_capacity(assignments.len());
        let mut lanes = vec![W::ZERO; self.gates.len()];
        for chunk in assignments.chunks(W::BITS) {
            for assignment in chunk {
                assert_eq!(
                    assignment.len(),
                    self.inputs.len(),
                    "expected {} input bits, got {}",
                    self.inputs.len(),
                    assignment.len()
                );
            }
            self.evaluate_slice(chunk, &mut lanes);
            for (k, _) in chunk.iter().enumerate() {
                results.push(
                    self.outputs
                        .iter()
                        .map(|id| lanes[id.index()] >> k & W::ONE == W::ONE)
                        .collect(),
                );
            }
        }
        results
    }

    /// One bit-sliced pass: evaluates up to `W::BITS` assignments, leaving
    /// the value of gate `g` on assignment `k` in bit `k` of `lanes[g]`.
    fn evaluate_slice<W: Word>(&self, chunk: &[Vec<bool>], lanes: &mut [W]) {
        debug_assert!(chunk.len() <= W::BITS);
        let active = W::mask_low(chunk.len());
        let mut next_input = 0usize;
        for i in 0..self.gates.len() {
            let gate = &self.gates[i];
            lanes[i] = match &gate.kind {
                GateKind::Input => {
                    let t = next_input;
                    next_input += 1;
                    chunk.iter().enumerate().fold(W::ZERO, |acc, (k, a)| {
                        acc | (W::from_u64(u64::from(a[t])) << k)
                    })
                }
                GateKind::Const(value) => {
                    if *value {
                        active
                    } else {
                        W::ZERO
                    }
                }
                GateKind::And => gate
                    .inputs
                    .iter()
                    .fold(active, |acc, id| acc & lanes[id.index()]),
                GateKind::Or => gate
                    .inputs
                    .iter()
                    .fold(W::ZERO, |acc, id| acc | lanes[id.index()]),
                GateKind::Not => {
                    assert_eq!(gate.inputs.len(), 1, "NOT gate takes exactly one input");
                    !lanes[gate.inputs[0].index()] & active
                }
                GateKind::Xor => gate
                    .inputs
                    .iter()
                    .fold(W::ZERO, |acc, id| acc ^ lanes[id.index()]),
                kind => {
                    // Counting gates: evaluate each active lane separately.
                    let mut word = W::ZERO;
                    for k in 0..chunk.len() {
                        let value = kind.eval_iter(
                            gate.inputs
                                .iter()
                                .map(|id| lanes[id.index()] >> k & W::ONE == W::ONE),
                        );
                        word |= W::from_u64(u64::from(value)) << k;
                    }
                    word
                }
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor3_circuit() -> Circuit {
        let mut c = Circuit::new();
        let xs = c.add_inputs(3);
        let x01 = c.add_gate(GateKind::Xor, &[xs[0], xs[1]]);
        let out = c.add_gate(GateKind::Xor, &[x01, xs[2]]);
        c.mark_output(out);
        c
    }

    #[test]
    fn basic_accounting() {
        let c = xor3_circuit();
        assert_eq!(c.gate_count(), 5);
        assert_eq!(c.wire_count(), 4);
        assert_eq!(c.depth(), 2);
        assert_eq!(c.inputs().len(), 3);
        assert_eq!(c.outputs().len(), 1);
        assert_eq!(c.max_separability_bits(), 1);
        assert_eq!(c.wire_density(2), 1);
        assert_eq!(c.wire_density(0), 1);
    }

    #[test]
    fn evaluation_matches_parity() {
        let c = xor3_circuit();
        for mask in 0..8u32 {
            let bits: Vec<bool> = (0..3).map(|i| mask >> i & 1 == 1).collect();
            let expected = bits.iter().filter(|&&b| b).count() % 2 == 1;
            assert_eq!(c.evaluate(&bits), vec![expected]);
        }
    }

    #[test]
    fn layers_respect_dependencies() {
        let c = xor3_circuit();
        let layers = c.layers();
        assert_eq!(layers.len(), 3);
        assert_eq!(layers[0].len(), 3); // inputs
        assert_eq!(layers[1].len(), 1);
        assert_eq!(layers[2].len(), 1);
        // Every gate's inputs lie in strictly earlier layers.
        let mut layer_of = vec![0usize; c.gate_count()];
        for (r, layer) in layers.iter().enumerate() {
            for id in layer {
                layer_of[id.index()] = r;
            }
        }
        for (i, gate) in c.gates().iter().enumerate() {
            for input in &gate.inputs {
                assert!(layer_of[input.index()] < layer_of[i]);
            }
        }
    }

    #[test]
    fn fan_outs_and_weights() {
        let mut c = Circuit::new();
        let xs = c.add_inputs(2);
        let a = c.add_gate(GateKind::And, &[xs[0], xs[1]]);
        let o = c.add_gate(GateKind::Or, &[xs[0], a]);
        c.mark_output(o);
        let fan_outs = c.fan_outs();
        assert_eq!(fan_outs[xs[0].index()], 2);
        assert_eq!(fan_outs[xs[1].index()], 1);
        assert_eq!(fan_outs[a.index()], 1);
        assert_eq!(fan_outs[o.index()], 0);
        let weights = c.gate_weights();
        assert_eq!(weights[a.index()], 3);
        assert_eq!(weights[o.index()], 2);
    }

    #[test]
    fn constants_and_outputs() {
        let mut c = Circuit::new();
        let t = c.add_gate(GateKind::Const(true), &[]);
        let x = c.add_input();
        let and = c.add_gate(GateKind::And, &[t, x]);
        c.mark_output(and);
        c.mark_output(t);
        assert_eq!(c.evaluate(&[true]), vec![true, true]);
        assert_eq!(c.evaluate(&[false]), vec![false, true]);
    }

    #[test]
    #[should_panic(expected = "must be added before")]
    fn forward_references_rejected() {
        let mut c = Circuit::new();
        let x = c.add_input();
        let _ = c.add_gate(GateKind::And, &[x, GateId(10)]);
    }

    #[test]
    #[should_panic(expected = "fan-in 2 invalid")]
    fn invalid_fan_in_rejected() {
        let mut c = Circuit::new();
        let xs = c.add_inputs(2);
        let _ = c.add_gate(GateKind::Not, &xs);
    }

    #[test]
    #[should_panic(expected = "expected 3 input bits")]
    fn wrong_assignment_length_panics() {
        let c = xor3_circuit();
        let _ = c.evaluate(&[true]);
    }

    #[test]
    fn evaluate_batch_matches_sequential_evaluate() {
        // Mix word-parallel and counting gates so both batch paths run.
        let mut c = Circuit::new();
        let xs = c.add_inputs(6);
        let and = c.add_gate(GateKind::And, &[xs[0], xs[1], xs[2]]);
        let xor = c.add_gate(GateKind::Xor, &[xs[3], xs[4], and]);
        let not = c.add_gate(GateKind::Not, &[xor]);
        let maj = c.add_gate(GateKind::Majority, &[xs[0], xs[5], not]);
        let thr = c.add_gate(GateKind::Threshold(2), &[and, xor, maj]);
        let t = c.add_gate(GateKind::Const(true), &[]);
        let out = c.add_gate(GateKind::Or, &[thr, t, xs[5]]);
        c.mark_output(maj);
        c.mark_output(out);

        // More than one 64-lane slice, including a partial final slice.
        let assignments: Vec<Vec<bool>> = (0..130u32)
            .map(|k| (0..6).map(|i| (k * 37 + 11) >> i & 1 == 1).collect())
            .collect();
        let batch = c.evaluate_batch(&assignments);
        assert_eq!(batch.len(), assignments.len());
        for (k, assignment) in assignments.iter().enumerate() {
            assert_eq!(batch[k], c.evaluate(assignment), "lane {k}");
        }
    }

    #[test]
    fn evaluate_batch_on_empty_input_sets() {
        let c = xor3_circuit();
        assert!(c.evaluate_batch(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "expected 3 input bits")]
    fn evaluate_batch_rejects_wrong_assignment_length() {
        let c = xor3_circuit();
        let _ = c.evaluate_batch(&[vec![true; 2]]);
    }

    #[test]
    fn evaluate_all_into_reuses_the_buffer() {
        let c = xor3_circuit();
        let mut scratch = Vec::new();
        c.evaluate_all_into(&[true, false, false], &mut scratch);
        let first = scratch.clone();
        assert_eq!(first, c.evaluate_all(&[true, false, false]));
        c.evaluate_all_into(&[true, true, true], &mut scratch);
        assert_eq!(scratch, c.evaluate_all(&[true, true, true]));
    }

    #[test]
    fn input_only_circuit_has_depth_zero() {
        let mut c = Circuit::new();
        let xs = c.add_inputs(4);
        for x in xs {
            c.mark_output(x);
        }
        assert_eq!(c.depth(), 0);
        assert_eq!(
            c.evaluate(&[true, false, true, false]),
            vec![true, false, true, false]
        );
    }
}
