//! Matrix-multiplication circuits over `F₂`.
//!
//! Section 2.1 of the paper observes that size-`O(n^{2+ε})` arithmetic
//! circuits for matrix multiplication would give `O(n^ε)`-round triangle
//! detection in `CLIQUE-UCAST(n, 1)`, via the simulation of Theorem 2 and a
//! randomized reduction from Boolean to `F₂` matrix products. The conjecture
//! itself cannot be implemented, but the *transfer* can: this module builds
//! explicit `F₂` matrix-multiplication circuits with the two exponents we
//! have constructions for —
//!
//! * [`matmul_f2_naive`]: `Θ(d³)` wires (`ω = 3`),
//! * [`matmul_f2_strassen`]: `Θ(d^{log₂ 7}) ≈ Θ(d^{2.81})` wires —
//!
//! and `clique-core` feeds them through the Theorem 2 simulation to obtain
//! triangle-detection protocols whose bandwidth scales with the circuit's
//! wire density.

use crate::circuit::{Circuit, GateId};
use crate::gate::GateKind;
use clique_sim::linalg::BitMatrix;

/// A matrix-multiplication circuit `C = A·B` over `F₂` together with the
/// bookkeeping needed to feed it inputs and read its outputs.
///
/// Input order (for [`Circuit::evaluate`]): all of `A` row-major, then all of
/// `B` row-major.
#[derive(Clone, Debug)]
pub struct MatMulCircuit {
    /// The underlying circuit.
    pub circuit: Circuit,
    /// Matrix dimension `d` (the product is `d × d`).
    pub dim: usize,
    /// Gate ids of the entries of `A` (row-major).
    pub a_inputs: Vec<GateId>,
    /// Gate ids of the entries of `B` (row-major).
    pub b_inputs: Vec<GateId>,
    /// Gate ids of the entries of `C = A·B` (row-major), also marked as the
    /// circuit outputs in this order.
    pub c_outputs: Vec<GateId>,
}

impl MatMulCircuit {
    /// Flattens two packed `d × d` matrices into the circuit's input
    /// assignment (all of `A` row-major, then all of `B` row-major).
    ///
    /// # Panics
    ///
    /// Panics if a matrix does not match the circuit dimension `d × d` —
    /// mismatches are rejected here, up front, rather than surfacing as a
    /// confusing failure deep inside circuit evaluation. Callers must pad
    /// their matrices to the circuit's dimension (e.g. with
    /// `Graph::adjacency_bitmatrix_padded`) *before* building the
    /// assignment.
    pub fn assignment(&self, a: &BitMatrix, b: &BitMatrix) -> Vec<bool> {
        let d = self.dim;
        for (name, m) in [("A", a), ("B", b)] {
            assert!(
                m.rows() == d && m.cols() == d,
                "matrix {name} must match the circuit dimension {d}×{d}, got {}×{} \
                 (pad the inputs to the circuit dimension before building the assignment)",
                m.rows(),
                m.cols()
            );
        }
        let mut out = Vec::with_capacity(2 * d * d);
        for m in [a, b] {
            for i in 0..d {
                for j in 0..d {
                    out.push(m.get(i, j));
                }
            }
        }
        out
    }

    /// Evaluates the circuit on two packed matrices, returning `A·B` over
    /// `F₂` as a packed `d × d` matrix.
    pub fn multiply(&self, a: &BitMatrix, b: &BitMatrix) -> BitMatrix {
        let flat = self.circuit.evaluate(&self.assignment(a, b));
        BitMatrix::from_row_major(self.dim, self.dim, &flat)
    }
}

/// The straightforward cubic circuit: `C[i][j] = ⊕_k A[i][k] ∧ B[k][j]`.
///
/// Uses `d³` AND gates and `d²` XOR gates of fan-in `d`, i.e. `3d³` wires
/// and depth 2.
pub fn matmul_f2_naive(dim: usize) -> MatMulCircuit {
    let mut c = Circuit::new();
    let a_inputs = c.add_inputs(dim * dim);
    let b_inputs = c.add_inputs(dim * dim);
    let mut c_outputs = Vec::with_capacity(dim * dim);
    for i in 0..dim {
        for j in 0..dim {
            let products: Vec<GateId> = (0..dim)
                .map(|k| {
                    c.add_gate(
                        GateKind::And,
                        &[a_inputs[i * dim + k], b_inputs[k * dim + j]],
                    )
                })
                .collect();
            let entry = if products.len() == 1 {
                products[0]
            } else {
                c.add_gate(GateKind::Xor, &products)
            };
            c.mark_output(entry);
            c_outputs.push(entry);
        }
    }
    MatMulCircuit {
        circuit: c,
        dim,
        a_inputs,
        b_inputs,
        c_outputs,
    }
}

/// Strassen's recursive circuit over `F₂` (where subtraction equals
/// addition equals XOR): `Θ(d^{log₂ 7})` wires, depth `Θ(log d)`.
///
/// # Panics
///
/// Panics if `dim` is not a power of two or is zero.
pub fn matmul_f2_strassen(dim: usize) -> MatMulCircuit {
    // The circuit splits all the way to 1×1 blocks, so its dimension must
    // be a fixed point of the shared block-split padding seam at the full
    // recursion depth (`MatMulStrategy::padded_dim` produces exactly these).
    assert!(
        dim > 0
            && clique_sim::linalg::strassen_padded_dim(
                dim,
                clique_sim::linalg::strassen_full_levels(dim),
            ) == dim,
        "Strassen circuit needs a power-of-two dimension"
    );
    let mut c = Circuit::new();
    let a_inputs = c.add_inputs(dim * dim);
    let b_inputs = c.add_inputs(dim * dim);
    let a = SquareIds::new(a_inputs.clone(), dim);
    let b = SquareIds::new(b_inputs.clone(), dim);
    let product = strassen_rec(&mut c, &a, &b);
    for &id in &product.ids {
        c.mark_output(id);
    }
    MatMulCircuit {
        circuit: c,
        dim,
        a_inputs,
        b_inputs,
        c_outputs: product.ids,
    }
}

/// A square matrix of gate ids.
#[derive(Clone, Debug)]
struct SquareIds {
    ids: Vec<GateId>,
    dim: usize,
}

impl SquareIds {
    fn new(ids: Vec<GateId>, dim: usize) -> Self {
        assert_eq!(ids.len(), dim * dim);
        Self { ids, dim }
    }

    fn at(&self, i: usize, j: usize) -> GateId {
        self.ids[i * self.dim + j]
    }

    /// Extracts a quadrant (half = dim/2): `(ri, cj)` selects the block.
    fn quadrant(&self, ri: usize, cj: usize) -> SquareIds {
        let half = self.dim / 2;
        let mut ids = Vec::with_capacity(half * half);
        for i in 0..half {
            for j in 0..half {
                ids.push(self.at(ri * half + i, cj * half + j));
            }
        }
        SquareIds { ids, dim: half }
    }
}

/// Elementwise XOR of two equal-size blocks (addition = subtraction in F₂).
fn add_blocks(c: &mut Circuit, x: &SquareIds, y: &SquareIds) -> SquareIds {
    assert_eq!(x.dim, y.dim);
    let ids = x
        .ids
        .iter()
        .zip(&y.ids)
        .map(|(&a, &b)| c.add_gate(GateKind::Xor, &[a, b]))
        .collect();
    SquareIds { ids, dim: x.dim }
}

/// XOR of several equal-size blocks in one layer of wider XOR gates.
fn add_many(c: &mut Circuit, blocks: &[&SquareIds]) -> SquareIds {
    let dim = blocks[0].dim;
    let ids = (0..dim * dim)
        .map(|idx| {
            let inputs: Vec<GateId> = blocks.iter().map(|b| b.ids[idx]).collect();
            c.add_gate(GateKind::Xor, &inputs)
        })
        .collect();
    SquareIds { ids, dim }
}

fn strassen_rec(c: &mut Circuit, a: &SquareIds, b: &SquareIds) -> SquareIds {
    let d = a.dim;
    if d == 1 {
        let prod = c.add_gate(GateKind::And, &[a.at(0, 0), b.at(0, 0)]);
        return SquareIds {
            ids: vec![prod],
            dim: 1,
        };
    }
    let (a11, a12, a21, a22) = (
        a.quadrant(0, 0),
        a.quadrant(0, 1),
        a.quadrant(1, 0),
        a.quadrant(1, 1),
    );
    let (b11, b12, b21, b22) = (
        b.quadrant(0, 0),
        b.quadrant(0, 1),
        b.quadrant(1, 0),
        b.quadrant(1, 1),
    );

    let s1 = add_blocks(c, &a11, &a22);
    let s2 = add_blocks(c, &b11, &b22);
    let m1 = strassen_rec(c, &s1, &s2);

    let s3 = add_blocks(c, &a21, &a22);
    let m2 = strassen_rec(c, &s3, &b11);

    let s4 = add_blocks(c, &b12, &b22);
    let m3 = strassen_rec(c, &a11, &s4);

    let s5 = add_blocks(c, &b21, &b11);
    let m4 = strassen_rec(c, &a22, &s5);

    let s6 = add_blocks(c, &a11, &a12);
    let m5 = strassen_rec(c, &s6, &b22);

    let s7 = add_blocks(c, &a21, &a11);
    let s8 = add_blocks(c, &b11, &b12);
    let m6 = strassen_rec(c, &s7, &s8);

    let s9 = add_blocks(c, &a12, &a22);
    let s10 = add_blocks(c, &b21, &b22);
    let m7 = strassen_rec(c, &s9, &s10);

    let c11 = add_many(c, &[&m1, &m4, &m5, &m7]);
    let c12 = add_blocks(c, &m3, &m5);
    let c21 = add_blocks(c, &m2, &m4);
    let c22 = add_many(c, &[&m1, &m2, &m3, &m6]);

    // Assemble the four quadrants into one block.
    let half = d / 2;
    let mut ids = vec![GateId(0); d * d];
    for i in 0..half {
        for j in 0..half {
            ids[i * d + j] = c11.ids[i * half + j];
            ids[i * d + (j + half)] = c12.ids[i * half + j];
            ids[(i + half) * d + j] = c21.ids[i * half + j];
            ids[(i + half) * d + (j + half)] = c22.ids[i * half + j];
        }
    }
    SquareIds { ids, dim: d }
}

/// Reference `F₂` matrix product used in tests and by the protocol layer:
/// the word-parallel [`BitMatrix::mul_f2`] kernel (which itself dispatches
/// to the Method of Four Russians for `d ≥ 256`).
pub fn matmul_f2_reference(a: &BitMatrix, b: &BitMatrix) -> BitMatrix {
    a.mul_f2(b)
}

/// The retained bool-at-a-time `F₂` product: the oracle the packed kernels
/// are property-tested against, and the scalar baseline `BENCH_kernels.json`
/// measures the word-parallel speedup from.
pub fn matmul_f2_scalar(a: &[Vec<bool>], b: &[Vec<bool>]) -> Vec<Vec<bool>> {
    let d = a.len();
    let mut out = vec![vec![false; d]; d];
    for i in 0..d {
        for j in 0..d {
            let mut acc = false;
            for (k, row_b) in b.iter().enumerate().take(d) {
                acc ^= a[i][k] & row_b[j];
            }
            out[i][j] = acc;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_matrix(rng: &mut impl Rng, d: usize) -> BitMatrix {
        let rows: Vec<Vec<bool>> = (0..d)
            .map(|_| (0..d).map(|_| rng.gen_bool(0.5)).collect())
            .collect();
        BitMatrix::from_rows(&rows)
    }

    #[test]
    fn naive_circuit_matches_reference() {
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        for d in [1usize, 2, 3, 5] {
            let circuit = matmul_f2_naive(d);
            for _ in 0..5 {
                let a = random_matrix(&mut rng, d);
                let b = random_matrix(&mut rng, d);
                assert_eq!(circuit.multiply(&a, &b), matmul_f2_reference(&a, &b));
            }
        }
    }

    #[test]
    fn strassen_circuit_matches_reference() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for d in [1usize, 2, 4, 8] {
            let circuit = matmul_f2_strassen(d);
            for _ in 0..5 {
                let a = random_matrix(&mut rng, d);
                let b = random_matrix(&mut rng, d);
                assert_eq!(
                    circuit.multiply(&a, &b),
                    matmul_f2_reference(&a, &b),
                    "Strassen mismatch at d = {d}"
                );
            }
        }
    }

    #[test]
    fn strassen_circuit_matches_the_packed_strassen_kernel() {
        // The lifting seam: the explicit circuit, the packed
        // `mul_f2_strassen` kernel (recursion forced at small dims) and the
        // bool-at-a-time oracle all compute one product.
        let mut rng = ChaCha8Rng::seed_from_u64(45);
        for (d, levels) in [(2usize, 1u32), (4, 2), (8, 3)] {
            let circuit = matmul_f2_strassen(d);
            let a = random_matrix(&mut rng, d);
            let b = random_matrix(&mut rng, d);
            let lifted = circuit.multiply(&a, &b);
            assert_eq!(
                lifted,
                a.mul_f2_strassen_with_levels(&b, levels, 1),
                "kernel mismatch at d = {d}"
            );
            assert_eq!(
                lifted.to_rows(),
                matmul_f2_scalar(&a.to_rows(), &b.to_rows()),
                "oracle mismatch at d = {d}"
            );
        }
    }

    #[test]
    fn packed_reference_matches_retained_scalar_product() {
        let mut rng = ChaCha8Rng::seed_from_u64(44);
        for d in [1usize, 3, 7, 16, 65] {
            let a = random_matrix(&mut rng, d);
            let b = random_matrix(&mut rng, d);
            let packed = matmul_f2_reference(&a, &b);
            let scalar = matmul_f2_scalar(&a.to_rows(), &b.to_rows());
            assert_eq!(packed.to_rows(), scalar, "mismatch at d = {d}");
        }
    }

    #[test]
    fn wire_counts_reflect_the_exponents() {
        let naive8 = matmul_f2_naive(8).circuit.wire_count();
        let strassen8 = matmul_f2_strassen(8).circuit.wire_count();
        // At d = 8 Strassen already uses fewer multiplication gates; with the
        // XOR overhead total wires are comparable, and the gap widens with d.
        let naive16 = matmul_f2_naive(16).circuit.wire_count();
        let strassen16 = matmul_f2_strassen(16).circuit.wire_count();
        let naive_growth = naive16 as f64 / naive8 as f64;
        let strassen_growth = strassen16 as f64 / strassen8 as f64;
        // Doubling d multiplies the naive wire count by 8 (ω = 3) and the
        // Strassen count by ≈ 7 plus lower-order XOR overhead (ω ≈ 2.81).
        assert!(naive_growth > 7.5, "naive growth {naive_growth}");
        assert!(
            strassen_growth < naive_growth && strassen_growth < 7.8,
            "Strassen growth {strassen_growth} should be ≈ 7, below naive {naive_growth}"
        );
    }

    #[test]
    fn depth_profile() {
        assert_eq!(matmul_f2_naive(4).circuit.depth(), 2);
        let s = matmul_f2_strassen(8);
        assert!(s.circuit.depth() >= 4);
        assert!(s.circuit.depth() <= 24, "depth {}", s.circuit.depth());
    }

    #[test]
    fn identity_matrix_behaviour() {
        let d = 4;
        let circuit = matmul_f2_strassen(d);
        let identity = BitMatrix::identity(d);
        let mut rng = ChaCha8Rng::seed_from_u64(43);
        let a = random_matrix(&mut rng, d);
        assert_eq!(circuit.multiply(&a, &identity), a);
        assert_eq!(circuit.multiply(&identity, &a), a);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn strassen_rejects_non_power_of_two() {
        let _ = matmul_f2_strassen(6);
    }

    #[test]
    #[should_panic(expected = "must match the circuit dimension")]
    fn mismatched_matrix_dimensions_panic() {
        let circuit = matmul_f2_naive(3);
        let bad = BitMatrix::zeros(3, 2);
        let good = BitMatrix::zeros(3, 3);
        let _ = circuit.multiply(&bad, &good);
    }

    #[test]
    #[should_panic(expected = "must match the circuit dimension")]
    fn unpadded_matrices_are_rejected_up_front() {
        // The caller pads; a 6×6 input against a padded-to-8 circuit must
        // fail immediately with an actionable message, not deep inside the
        // evaluation.
        let circuit = matmul_f2_strassen(8);
        let unpadded = BitMatrix::zeros(6, 6);
        let _ = circuit.assignment(&unpadded, &unpadded);
    }
}
