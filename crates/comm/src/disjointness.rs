//! Set-disjointness instances and the known communication lower bounds the
//! paper quotes.
//!
//! All lower bounds in Section 3 are reductions *from* set disjointness: the
//! two-party number-in-hand version for the subgraph-detection bounds
//! (Lemma 13) and the three-party number-on-forehead version for triangle
//! detection (Theorem 24). This module provides the instances, exact
//! brute-force answers, random instance generators, and the cited lower
//! bounds as explicit formulas (the proofs of those external bounds are out
//! of scope; see DESIGN.md).

use rand::Rng;

/// A two-party set-disjointness instance over `{0, …, universe-1}`:
/// Alice holds `x`, Bob holds `y`, and they must decide whether
/// `x ∩ y = ∅`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DisjointnessInstance {
    /// Alice's characteristic vector.
    pub x: Vec<bool>,
    /// Bob's characteristic vector.
    pub y: Vec<bool>,
}

impl DisjointnessInstance {
    /// Creates an instance from characteristic vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn new(x: Vec<bool>, y: Vec<bool>) -> Self {
        assert_eq!(x.len(), y.len(), "both sets live in the same universe");
        Self { x, y }
    }

    /// The universe size `N`.
    pub fn universe(&self) -> usize {
        self.x.len()
    }

    /// Returns `true` if the sets are disjoint.
    pub fn is_disjoint(&self) -> bool {
        self.x.iter().zip(&self.y).all(|(&a, &b)| !(a && b))
    }

    /// The elements of the intersection.
    pub fn intersection(&self) -> Vec<usize> {
        self.x
            .iter()
            .zip(&self.y)
            .enumerate()
            .filter_map(|(i, (&a, &b))| (a && b).then_some(i))
            .collect()
    }

    /// A uniformly random instance (each element joins each set with
    /// probability 1/2 independently).
    pub fn random<R: Rng + ?Sized>(universe: usize, rng: &mut R) -> Self {
        Self::new(
            (0..universe).map(|_| rng.gen_bool(0.5)).collect(),
            (0..universe).map(|_| rng.gen_bool(0.5)).collect(),
        )
    }

    /// A random *disjoint* instance: every element goes to Alice, Bob, or
    /// neither.
    pub fn random_disjoint<R: Rng + ?Sized>(universe: usize, rng: &mut R) -> Self {
        let mut x = vec![false; universe];
        let mut y = vec![false; universe];
        for i in 0..universe {
            match rng.gen_range(0..3) {
                0 => x[i] = true,
                1 => y[i] = true,
                _ => {}
            }
        }
        Self::new(x, y)
    }

    /// A random instance that intersects in exactly one uniformly chosen
    /// element (the hard distribution for disjointness).
    pub fn random_single_intersection<R: Rng + ?Sized>(universe: usize, rng: &mut R) -> Self {
        assert!(universe > 0, "cannot intersect over an empty universe");
        let mut inst = Self::random_disjoint(universe, rng);
        let witness = rng.gen_range(0..universe);
        inst.x[witness] = true;
        inst.y[witness] = true;
        inst
    }
}

/// A three-party number-on-forehead set-disjointness instance over
/// `{0, …, universe-1}`: the parties must decide whether
/// `x_a ∩ x_b ∩ x_c = ∅`, where each party sees the *other two* sets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NofDisjointnessInstance {
    /// The set "on Alice's forehead" (visible to Bob and Charlie).
    pub x_a: Vec<bool>,
    /// The set on Bob's forehead.
    pub x_b: Vec<bool>,
    /// The set on Charlie's forehead.
    pub x_c: Vec<bool>,
}

impl NofDisjointnessInstance {
    /// Creates an instance from characteristic vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn new(x_a: Vec<bool>, x_b: Vec<bool>, x_c: Vec<bool>) -> Self {
        assert!(
            x_a.len() == x_b.len() && x_b.len() == x_c.len(),
            "all three sets live in the same universe"
        );
        Self { x_a, x_b, x_c }
    }

    /// The universe size `m`.
    pub fn universe(&self) -> usize {
        self.x_a.len()
    }

    /// Returns `true` if the three-way intersection is empty.
    pub fn is_disjoint(&self) -> bool {
        self.common_elements().is_empty()
    }

    /// The elements in all three sets.
    pub fn common_elements(&self) -> Vec<usize> {
        (0..self.universe())
            .filter(|&i| self.x_a[i] && self.x_b[i] && self.x_c[i])
            .collect()
    }

    /// A uniformly random instance.
    pub fn random<R: Rng + ?Sized>(universe: usize, rng: &mut R) -> Self {
        let gen = |rng: &mut R| (0..universe).map(|_| rng.gen_bool(0.5)).collect();
        Self::new(gen(rng), gen(rng), gen(rng))
    }

    /// A random instance with empty three-way intersection.
    pub fn random_disjoint<R: Rng + ?Sized>(universe: usize, rng: &mut R) -> Self {
        let mut inst = Self::random(universe, rng);
        for i in 0..universe {
            if inst.x_a[i] && inst.x_b[i] && inst.x_c[i] {
                // Drop the element from one uniformly chosen set.
                match rng.gen_range(0..3) {
                    0 => inst.x_a[i] = false,
                    1 => inst.x_b[i] = false,
                    _ => inst.x_c[i] = false,
                }
            }
        }
        inst
    }

    /// A random instance whose three-way intersection is exactly one element.
    pub fn random_single_intersection<R: Rng + ?Sized>(universe: usize, rng: &mut R) -> Self {
        assert!(universe > 0, "cannot intersect over an empty universe");
        let mut inst = Self::random_disjoint(universe, rng);
        let witness = rng.gen_range(0..universe);
        inst.x_a[witness] = true;
        inst.x_b[witness] = true;
        inst.x_c[witness] = true;
        inst
    }
}

/// The cited communication-complexity lower bounds on set disjointness,
/// expressed in bits as functions of the universe size.
///
/// These are *external* results used by the paper; this crate turns them into
/// implied round lower bounds for the congested clique via the executable
/// reductions of Lemma 13 and Theorem 24.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DisjointnessBound {
    /// Two-party deterministic: `D(Disj_N) ≥ N` bits (fooling set / rank).
    TwoPartyDeterministic,
    /// Two-party randomized: `R(Disj_N) = Ω(N)` bits
    /// (Kalyanasundaram–Schnitger / Razborov); the constant used here is
    /// `N/4`.
    TwoPartyRandomized,
    /// Three-party NOF deterministic: `Ω(N)` bits (Rao–Yehudayoff); constant
    /// `N/4`.
    ThreePartyNofDeterministic,
    /// Three-party NOF randomized: `Ω(√N)` bits (Sherstov).
    ThreePartyNofRandomized,
}

impl DisjointnessBound {
    /// The lower bound in bits for the given universe size.
    pub fn bits(&self, universe: u64) -> f64 {
        let n = universe as f64;
        match self {
            DisjointnessBound::TwoPartyDeterministic => n,
            DisjointnessBound::TwoPartyRandomized => n / 4.0,
            DisjointnessBound::ThreePartyNofDeterministic => n / 4.0,
            DisjointnessBound::ThreePartyNofRandomized => n.sqrt(),
        }
    }

    /// A short citation string.
    pub fn citation(&self) -> &'static str {
        match self {
            DisjointnessBound::TwoPartyDeterministic => "folklore (fooling set)",
            DisjointnessBound::TwoPartyRandomized => "Kalyanasundaram–Schnitger 1992",
            DisjointnessBound::ThreePartyNofDeterministic => "Rao–Yehudayoff 2014",
            DisjointnessBound::ThreePartyNofRandomized => "Sherstov 2013",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(0xD15)
    }

    #[test]
    fn two_party_basics() {
        let inst = DisjointnessInstance::new(
            vec![true, false, true, false],
            vec![false, true, false, false],
        );
        assert!(inst.is_disjoint());
        assert!(inst.intersection().is_empty());
        let inst2 = DisjointnessInstance::new(
            vec![true, false, true, false],
            vec![false, true, true, false],
        );
        assert!(!inst2.is_disjoint());
        assert_eq!(inst2.intersection(), vec![2]);
        assert_eq!(inst2.universe(), 4);
    }

    #[test]
    fn two_party_generators_have_promised_structure() {
        let mut r = rng();
        for _ in 0..20 {
            assert!(DisjointnessInstance::random_disjoint(50, &mut r).is_disjoint());
            let single = DisjointnessInstance::random_single_intersection(50, &mut r);
            assert_eq!(single.intersection().len(), 1);
        }
        // Uniform instances of moderate size are rarely disjoint.
        let mostly_intersecting = (0..20)
            .filter(|_| !DisjointnessInstance::random(64, &mut r).is_disjoint())
            .count();
        assert!(mostly_intersecting >= 15);
    }

    #[test]
    fn nof_basics() {
        let inst = NofDisjointnessInstance::new(
            vec![true, true, false],
            vec![true, false, true],
            vec![true, true, true],
        );
        assert!(!inst.is_disjoint());
        assert_eq!(inst.common_elements(), vec![0]);
        let disj = NofDisjointnessInstance::new(
            vec![true, true, false],
            vec![true, false, true],
            vec![false, true, true],
        );
        assert!(disj.is_disjoint());
        assert_eq!(disj.universe(), 3);
    }

    #[test]
    fn nof_generators_have_promised_structure() {
        let mut r = rng();
        for _ in 0..20 {
            assert!(NofDisjointnessInstance::random_disjoint(40, &mut r).is_disjoint());
            let single = NofDisjointnessInstance::random_single_intersection(40, &mut r);
            assert_eq!(single.common_elements().len(), 1);
        }
    }

    #[test]
    fn bounds_scale_as_stated() {
        assert_eq!(DisjointnessBound::TwoPartyDeterministic.bits(1000), 1000.0);
        assert_eq!(DisjointnessBound::TwoPartyRandomized.bits(1000), 250.0);
        assert_eq!(
            DisjointnessBound::ThreePartyNofDeterministic.bits(1000),
            250.0
        );
        assert!((DisjointnessBound::ThreePartyNofRandomized.bits(10_000) - 100.0).abs() < 1e-9);
        for b in [
            DisjointnessBound::TwoPartyDeterministic,
            DisjointnessBound::TwoPartyRandomized,
            DisjointnessBound::ThreePartyNofDeterministic,
            DisjointnessBound::ThreePartyNofRandomized,
        ] {
            assert!(!b.citation().is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "same universe")]
    fn mismatched_universe_rejected() {
        let _ = DisjointnessInstance::new(vec![true], vec![true, false]);
    }
}
