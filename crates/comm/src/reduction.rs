//! Executable reduction runners (Lemma 13 and Theorem 24).
//!
//! The lower-bound arguments of the paper convert an `H`-detection protocol
//! for the broadcast congested clique into a set-disjointness protocol: the
//! two (or three) parties build the lower-bound graph from their inputs,
//! simulate the clique protocol locally, and read the answer off the
//! blackboard. In a round of `CLIQUE-BCAST(n, b)` the blackboard carries
//! `n·b` bits, so an `R`-round detection protocol yields an `R·n·b`-bit
//! disjointness protocol — which cannot beat the cited disjointness lower
//! bounds. The runners in this module execute exactly that pipeline against
//! a caller-supplied detection protocol and report both directions: whether
//! the detection answers matched the disjointness ground truth, and what
//! round lower bound the reduction implies.

use clique_graphs::Graph;
use rand::Rng;

use crate::disjointness::{DisjointnessBound, DisjointnessInstance, NofDisjointnessInstance};
use crate::lbgraph::LowerBoundGraph;
use crate::nof_reduction::TriangleNofReduction;

/// The outcome of one detection-protocol execution, as reported by the
/// caller-supplied protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DetectionRun {
    /// Whether the protocol declared that the input contains the pattern.
    pub contains: bool,
    /// Rounds the protocol used.
    pub rounds: u64,
}

/// Aggregate result of running a reduction over several instances.
#[derive(Clone, Debug, PartialEq)]
pub struct ReductionReport {
    /// Number of instances executed.
    pub trials: usize,
    /// Number of instances on which the detection answer matched the
    /// disjointness ground truth.
    pub correct: usize,
    /// Maximum rounds used by the detection protocol over the trials.
    pub max_rounds: u64,
    /// The communication (in bits) of the simulated disjointness protocol:
    /// `max_rounds · n · b`.
    pub simulated_protocol_bits: u64,
    /// The size of the disjointness universe.
    pub elements: usize,
    /// The round lower bound implied by the stated disjointness bound.
    pub implied_round_lower_bound: f64,
}

impl ReductionReport {
    /// Returns `true` if every trial produced the correct answer.
    pub fn all_correct(&self) -> bool {
        self.correct == self.trials
    }

    /// Returns `true` if the simulated protocol respects the stated
    /// disjointness lower bound (it must, unless the detection protocol is
    /// buggy or the bound's constant is generous).
    pub fn consistent_with(&self, bound: DisjointnessBound) -> bool {
        self.simulated_protocol_bits as f64 >= bound.bits(self.elements as u64) || self.trials == 0
    }
}

/// Runs the Lemma 13 reduction: detection protocols for the pattern of `lbg`
/// are exercised on instantiated disjointness instances.
///
/// `detect` receives the instantiated input graph and must return the
/// protocol's answer and round count for `CLIQUE-BCAST(n, bandwidth)`.
pub fn run_two_party_reduction<R, F>(
    lbg: &LowerBoundGraph,
    bandwidth: usize,
    bound: DisjointnessBound,
    trials: usize,
    rng: &mut R,
    mut detect: F,
) -> ReductionReport
where
    R: Rng + ?Sized,
    F: FnMut(&Graph) -> DetectionRun,
{
    let m = lbg.elements();
    let mut correct = 0usize;
    let mut max_rounds = 0u64;
    for t in 0..trials {
        let instance = if t % 2 == 0 {
            DisjointnessInstance::random_disjoint(m, rng)
        } else {
            DisjointnessInstance::random_single_intersection(m, rng)
        };
        let graph = lbg.instantiate(&instance);
        let run = detect(&graph);
        if run.contains != instance.is_disjoint() {
            correct += 1;
        }
        max_rounds = max_rounds.max(run.rounds);
    }
    ReductionReport {
        trials,
        correct,
        max_rounds,
        simulated_protocol_bits: max_rounds * lbg.vertex_count() as u64 * bandwidth as u64,
        elements: m,
        implied_round_lower_bound: lbg.implied_bcast_rounds(bound, bandwidth),
    }
}

/// Runs the Theorem 24 reduction: a triangle-detection protocol is exercised
/// on instantiated 3-party NOF disjointness instances.
pub fn run_nof_reduction<R, F>(
    reduction: &TriangleNofReduction,
    bandwidth: usize,
    bound: DisjointnessBound,
    trials: usize,
    rng: &mut R,
    mut detect: F,
) -> ReductionReport
where
    R: Rng + ?Sized,
    F: FnMut(&Graph) -> DetectionRun,
{
    let m = reduction.elements();
    let mut correct = 0usize;
    let mut max_rounds = 0u64;
    for t in 0..trials {
        let instance = if t % 2 == 0 {
            NofDisjointnessInstance::random_disjoint(m, rng)
        } else {
            NofDisjointnessInstance::random_single_intersection(m, rng)
        };
        let graph = reduction.instantiate(&instance);
        let run = detect(&graph);
        if run.contains != instance.is_disjoint() {
            correct += 1;
        }
        max_rounds = max_rounds.max(run.rounds);
    }
    ReductionReport {
        trials,
        correct,
        max_rounds,
        simulated_protocol_bits: max_rounds * reduction.vertex_count() as u64 * bandwidth as u64,
        elements: m,
        implied_round_lower_bound: reduction.implied_bcast_rounds(bound, bandwidth),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clique_graphs::iso;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// An "omniscient" detector: answers by local search and charges the
    /// trivial number of rounds (every node broadcasts its row).
    fn oracle_detector(
        pattern: clique_graphs::Graph,
        n: usize,
        b: usize,
    ) -> impl FnMut(&Graph) -> DetectionRun {
        move |g: &Graph| DetectionRun {
            contains: iso::contains_subgraph(g, &pattern),
            rounds: (n as u64).div_ceil(b as u64),
        }
    }

    #[test]
    fn two_party_reduction_with_oracle_detector() {
        let mut rng = ChaCha8Rng::seed_from_u64(0x77);
        let lbg = LowerBoundGraph::for_clique(4, 28).unwrap();
        let b = 4;
        let detector = oracle_detector(lbg.pattern().graph(), lbg.vertex_count(), b);
        let report = run_two_party_reduction(
            &lbg,
            b,
            DisjointnessBound::TwoPartyDeterministic,
            8,
            &mut rng,
            detector,
        );
        assert_eq!(report.trials, 8);
        assert!(report.all_correct(), "oracle detector must always be right");
        assert!(report.max_rounds >= 1);
        assert!(report.implied_round_lower_bound > 0.0);
    }

    #[test]
    fn nof_reduction_with_oracle_detector() {
        let mut rng = ChaCha8Rng::seed_from_u64(0x78);
        let red = TriangleNofReduction::new(12);
        let b = 2;
        let triangle = clique_graphs::generators::complete(3);
        let detector = oracle_detector(triangle, red.vertex_count(), b);
        let report = run_nof_reduction(
            &red,
            b,
            DisjointnessBound::ThreePartyNofDeterministic,
            8,
            &mut rng,
            detector,
        );
        assert!(report.all_correct());
        assert!(report.elements > 0);
    }

    #[test]
    fn broken_detector_is_caught() {
        let mut rng = ChaCha8Rng::seed_from_u64(0x79);
        let lbg = LowerBoundGraph::for_clique(4, 24).unwrap();
        let report = run_two_party_reduction(
            &lbg,
            1,
            DisjointnessBound::TwoPartyDeterministic,
            6,
            &mut rng,
            |_g| DetectionRun {
                contains: true,
                rounds: 1,
            },
        );
        assert!(!report.all_correct());
        // Half the instances are disjoint, so roughly half the answers are
        // wrong.
        assert!(report.correct < report.trials);
    }

    #[test]
    fn report_consistency_check() {
        let report = ReductionReport {
            trials: 4,
            correct: 4,
            max_rounds: 10,
            simulated_protocol_bits: 1000,
            elements: 900,
            implied_round_lower_bound: 2.0,
        };
        assert!(report.consistent_with(DisjointnessBound::TwoPartyDeterministic));
        let tight = ReductionReport {
            simulated_protocol_bits: 100,
            ..report.clone()
        };
        assert!(!tight.consistent_with(DisjointnessBound::TwoPartyDeterministic));
    }
}
