//! # clique-comm — communication complexity substrate and lower-bound gadgets
//!
//! Section 3 of Drucker, Kuhn & Oshman (PODC 2014) proves round lower bounds
//! for subgraph detection in the broadcast congested clique by reduction from
//! set disjointness. This crate makes those reductions executable:
//!
//! * [`disjointness`] — two-party and three-party number-on-forehead set
//!   disjointness instances, generators for the hard distributions, and the
//!   cited external lower bounds as explicit formulas;
//! * [`lbgraph`] — (H, F)-lower-bound graphs (Definition 10) with the
//!   concrete constructions of Lemma 14 (cliques), Lemma 18 (cycles) and
//!   Lemma 21 (complete bipartite subgraphs), plus a semantic checker for
//!   Observation 11;
//! * [`nof_reduction`] — the Ruzsa–Szemerédi-based reduction of Theorem 24
//!   from 3-party NOF disjointness to triangle detection;
//! * [`reduction`] — runners that execute a detection protocol through a
//!   reduction and report correctness and the implied round lower bounds
//!   (Lemma 13, Theorem 24);
//! * [`counting`] — the non-explicit counting lower bound and the matching
//!   trivial upper bound.
//!
//! # Examples
//!
//! ```
//! use clique_comm::disjointness::{DisjointnessBound, DisjointnessInstance};
//! use clique_comm::lbgraph::LowerBoundGraph;
//! use clique_graphs::iso::contains_subgraph;
//!
//! // Lemma 14: a K4 lower-bound graph on 32 nodes encodes disjointness on
//! // N² = 8² = 64 elements, so K4-detection needs Ω(N²/(n·b)) broadcast rounds.
//! let lbg = LowerBoundGraph::for_clique(4, 32).unwrap();
//! assert_eq!(lbg.elements(), 64);
//!
//! // Observation 11: the instantiated graph contains K4 iff the instance
//! // intersects.
//! let m = lbg.elements();
//! let disjoint = DisjointnessInstance::new(vec![true; m], vec![false; m]);
//! let g = lbg.instantiate(&disjoint);
//! assert!(!contains_subgraph(&g, &lbg.pattern().graph()));
//! assert!(lbg.implied_bcast_rounds(DisjointnessBound::TwoPartyDeterministic, 1) > 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counting;
pub mod disjointness;
pub mod lbgraph;
pub mod nof_reduction;
pub mod reduction;

pub use disjointness::{DisjointnessBound, DisjointnessInstance, NofDisjointnessInstance};
pub use lbgraph::LowerBoundGraph;
pub use nof_reduction::TriangleNofReduction;
pub use reduction::{run_nof_reduction, run_two_party_reduction, DetectionRun, ReductionReport};
