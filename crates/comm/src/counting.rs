//! The non-explicit counting lower bound and the matching trivial upper
//! bound (Section 1 / full version).
//!
//! With `n` bits of input per player, `⌈n/b⌉` rounds of `CLIQUE-UCAST(n, b)`
//! always suffice for any function: every player can ship its whole input to
//! player 0, who answers locally. Conversely, a counting argument shows that
//! *some* function of the `n²` input bits requires `(n − O(log n))/b` rounds:
//! in `R` rounds a fixed player receives at most `R·(n−1)·b` bits, and if
//! that is much less than `n` there are more functions of the unseen input
//! bits than behaviours the player can exhibit. These quantities are
//! provided here as explicit formulas (experiment E10).

/// Bits a single player can receive in `rounds` rounds of
/// `CLIQUE-UCAST(n, b)` (or `CLIQUE-BCAST`, where it is the whole
/// blackboard).
pub fn bits_receivable(n: usize, bandwidth: usize, rounds: u64) -> u64 {
    rounds * (n.saturating_sub(1) as u64) * bandwidth as u64
}

/// The trivial upper bound: rounds for every player to ship its `n`-bit
/// input to a single designated player, `⌈n/b⌉`.
pub fn trivial_upper_bound_rounds(n: usize, bandwidth: usize) -> u64 {
    (n as u64).div_ceil(bandwidth as u64)
}

/// The non-explicit counting lower bound `(n − c·log₂ n)/b` on the rounds
/// needed to compute *some* function `f : {0,1}^{n²} → {0,1}` in
/// `CLIQUE-UCAST(n, b)` (with `c = 2`, a conservative constant covering the
/// bookkeeping in the full version's argument). Returns 0 when the bound is
/// vacuous.
pub fn nonexplicit_lower_bound_rounds(n: usize, bandwidth: usize) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    let log = (n as f64).log2();
    ((n as f64 - 2.0 * log) / bandwidth as f64).max(0.0)
}

/// The gap between the trivial upper bound and the counting lower bound,
/// as a ratio `upper / lower` (`f64::INFINITY` when the lower bound is 0).
/// The paper notes this gap is `1 + o(1)`: the non-explicit bound is nearly
/// tight.
pub fn counting_gap(n: usize, bandwidth: usize) -> f64 {
    let lower = nonexplicit_lower_bound_rounds(n, bandwidth);
    if lower == 0.0 {
        f64::INFINITY
    } else {
        trivial_upper_bound_rounds(n, bandwidth) as f64 / lower
    }
}

/// A tiny exhaustive demonstration of the counting argument, used by tests
/// and experiment E10: the number of distinct behaviours a single receiving
/// player can exhibit after seeing `budget` bits is `2^budget` (log₂ scale
/// returned), while the number of Boolean functions of `k` unseen input bits
/// is `2^{2^k}` (log₂ of log₂ returned as `k`). Whenever `budget < 2^k`
/// some function is not computable.
pub fn counting_argument_holds(budget_bits: u64, unseen_bits: u32) -> bool {
    // 2^budget >= 2^(2^k) iff budget >= 2^k.
    match 1u64.checked_shl(unseen_bits) {
        Some(functions_log) => budget_bits < functions_log,
        None => true, // 2^k overflows u64, certainly bigger than any budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_upper_bound_values() {
        assert_eq!(trivial_upper_bound_rounds(64, 1), 64);
        assert_eq!(trivial_upper_bound_rounds(64, 8), 8);
        assert_eq!(trivial_upper_bound_rounds(65, 8), 9);
        assert_eq!(trivial_upper_bound_rounds(1, 1), 1);
    }

    #[test]
    fn lower_bound_close_to_upper_bound() {
        for n in [64usize, 256, 1024, 4096] {
            for b in [1usize, 8, 16] {
                let lower = nonexplicit_lower_bound_rounds(n, b);
                let upper = trivial_upper_bound_rounds(n, b) as f64;
                assert!(lower <= upper, "lower bound exceeds upper bound");
                // The gap is exactly the O(log n)/b slack of the argument.
                assert!(
                    upper - lower <= (2.0 * (n as f64).log2()) / b as f64 + 1.0,
                    "n={n}, b={b}: gap between {lower} and {upper} too large"
                );
            }
        }
        // The ratio upper/lower tends to 1 as n grows.
        assert!(counting_gap(4096, 1) < counting_gap(64, 1));
        assert!(counting_gap(4096, 1) < 1.01);
        assert!(counting_gap(1, 1).is_infinite());
    }

    #[test]
    fn bits_receivable_scaling() {
        assert_eq!(bits_receivable(10, 2, 3), 54);
        assert_eq!(bits_receivable(1, 2, 3), 0);
        assert_eq!(bits_receivable(10, 2, 0), 0);
    }

    #[test]
    fn counting_argument_small_cases() {
        // A player that has seen 7 bits cannot compute every function of 3
        // unseen bits (there are 2^8 of them).
        assert!(counting_argument_holds(7, 3));
        assert!(!counting_argument_holds(8, 3));
        assert!(counting_argument_holds(1000, 60));
        assert!(counting_argument_holds(u64::MAX, 64));
    }

    #[test]
    fn vacuous_cases() {
        assert_eq!(nonexplicit_lower_bound_rounds(0, 4), 0.0);
        assert_eq!(nonexplicit_lower_bound_rounds(1, 4), 0.0);
        assert_eq!(nonexplicit_lower_bound_rounds(2, 100), 0.0);
    }
}
