//! The Theorem 24 reduction: 3-party NOF set disjointness → triangle
//! detection in `CLIQUE-BCAST`.
//!
//! Triangles resist the two-party technique of Lemma 13 because any vertex
//! bipartition leaves one player seeing all three edges of some triangle.
//! Theorem 24 instead starts from a Ruzsa–Szemerédi graph `G_n` (Claim 23):
//! a tripartite graph whose `m = n²/e^{O(√log n)}` designated triangles are
//! edge-disjoint and are the *only* triangles. Each designated triangle is a
//! disjointness element; an edge of `G_n` is kept in the input graph iff its
//! triangle's index belongs to the set held "on the forehead" of the party
//! that does **not** simulate either endpoint. The instance then contains a
//! triangle iff the three sets share an element, so a fast triangle-detection
//! protocol yields a cheap 3-party NOF protocol for disjointness.

use clique_graphs::behrend::RuzsaSzemeredi;
use clique_graphs::Graph;

use crate::disjointness::{DisjointnessBound, NofDisjointnessInstance};

/// Which of the three NOF parties simulates which part of the tripartite
/// Ruzsa–Szemerédi graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NofParty {
    /// Simulates part `A`; does not see the set `x_a`.
    Alice,
    /// Simulates part `B`; does not see the set `x_b`.
    Bob,
    /// Simulates part `C`; does not see the set `x_c`.
    Charlie,
}

/// The executable reduction of Theorem 24.
#[derive(Clone, Debug)]
pub struct TriangleNofReduction {
    rs: RuzsaSzemeredi,
}

impl TriangleNofReduction {
    /// Builds the reduction for Ruzsa–Szemerédi parameter `m_param`
    /// (the graph has `6·m_param` vertices and
    /// `m_param·|S_Behrend(m_param)|` disjointness elements).
    pub fn new(m_param: usize) -> Self {
        Self {
            rs: RuzsaSzemeredi::new(m_param),
        }
    }

    /// The underlying Ruzsa–Szemerédi graph.
    pub fn ruzsa_szemeredi(&self) -> &RuzsaSzemeredi {
        &self.rs
    }

    /// Number of players of the resulting clique instance (`|A ∪ B ∪ C|`).
    pub fn vertex_count(&self) -> usize {
        self.rs.vertex_count()
    }

    /// The size of the NOF disjointness universe (`m(n)` of the paper).
    pub fn elements(&self) -> usize {
        self.rs.triangle_count()
    }

    /// Which party simulates the given vertex.
    pub fn owner(&self, vertex: usize) -> NofParty {
        let (a, b, _) = self.rs.parts();
        if a.contains(&vertex) {
            NofParty::Alice
        } else if b.contains(&vertex) {
            NofParty::Bob
        } else {
            NofParty::Charlie
        }
    }

    /// Builds the input graph `G_X` for a NOF disjointness instance: an edge
    /// of the Ruzsa–Szemerédi graph is present iff the index of its unique
    /// triangle belongs to the set *not seen* by the two parties owning its
    /// endpoints (`A×B` edges are controlled by `x_c`, `B×C` by `x_a`,
    /// `C×A` by `x_b`).
    ///
    /// # Panics
    ///
    /// Panics if the instance universe differs from [`Self::elements`].
    pub fn instantiate(&self, instance: &NofDisjointnessInstance) -> Graph {
        assert_eq!(
            instance.universe(),
            self.elements(),
            "instance universe must equal the number of designated triangles"
        );
        let mut g = Graph::empty(self.vertex_count());
        for (u, v) in self.rs.graph.edges() {
            let idx = self
                .rs
                .triangle_of_edge(u, v)
                .expect("every RS edge lies in a designated triangle");
            let keep = match (self.owner(u), self.owner(v)) {
                (NofParty::Alice, NofParty::Bob) | (NofParty::Bob, NofParty::Alice) => {
                    instance.x_c[idx]
                }
                (NofParty::Bob, NofParty::Charlie) | (NofParty::Charlie, NofParty::Bob) => {
                    instance.x_a[idx]
                }
                (NofParty::Charlie, NofParty::Alice) | (NofParty::Alice, NofParty::Charlie) => {
                    instance.x_b[idx]
                }
                _ => unreachable!("the Ruzsa–Szemerédi graph is tripartite"),
            };
            if keep {
                g.add_edge(u, v);
            }
        }
        g
    }

    /// Verifies on each party's side that it can construct all edges incident
    /// to its own vertices from the two sets it sees (the number-on-forehead
    /// property that makes the simulation work).
    pub fn parties_can_build_their_edges(&self) -> bool {
        // An A-vertex is incident only to A×B edges (controlled by x_c,
        // visible to Alice) and A×C edges (controlled by x_b, visible to
        // Alice). Symmetrically for the others, so the property holds by
        // construction; the check below re-derives it from the data.
        self.rs.graph.edges().all(|(u, v)| {
            let owners = (self.owner(u), self.owner(v));
            !matches!(
                owners,
                (NofParty::Alice, NofParty::Alice)
                    | (NofParty::Bob, NofParty::Bob)
                    | (NofParty::Charlie, NofParty::Charlie)
            )
        })
    }

    /// The round lower bound for triangle detection in `CLIQUE-BCAST(n, b)`
    /// implied by Theorem 24 under the given NOF disjointness bound:
    /// `bound(m(n)) / ((7/3)·n·b)` (the simulation writes `(7/3)·n·b` bits
    /// per round in the paper's normalisation; with our part sizes the
    /// blackboard carries `n·b` bits per round, so we use that).
    pub fn implied_bcast_rounds(&self, bound: DisjointnessBound, bandwidth: usize) -> f64 {
        bound.bits(self.elements() as u64) / (self.vertex_count() as f64 * bandwidth as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clique_graphs::iso::has_triangle;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn reduction_semantics_on_crafted_instances() {
        let red = TriangleNofReduction::new(18);
        let m = red.elements();
        assert!(m > 0);

        let empty = NofDisjointnessInstance::new(vec![false; m], vec![false; m], vec![false; m]);
        assert!(!has_triangle(&red.instantiate(&empty)));

        let full = NofDisjointnessInstance::new(vec![true; m], vec![true; m], vec![true; m]);
        assert!(has_triangle(&red.instantiate(&full)));

        // Pairwise full but three-way disjoint: x_a ∩ x_b ∩ x_c = ∅.
        let thirds_a: Vec<bool> = (0..m).map(|i| i % 3 != 0).collect();
        let thirds_b: Vec<bool> = (0..m).map(|i| i % 3 != 1).collect();
        let thirds_c: Vec<bool> = (0..m).map(|i| i % 3 != 2).collect();
        let pairwise = NofDisjointnessInstance::new(thirds_a, thirds_b, thirds_c);
        assert!(pairwise.is_disjoint());
        assert!(
            !has_triangle(&red.instantiate(&pairwise)),
            "three-way-disjoint instance must not create a triangle"
        );

        for witness in [0usize, m / 2, m - 1] {
            let mut x_a = vec![false; m];
            let mut x_b = vec![false; m];
            let mut x_c = vec![false; m];
            x_a[witness] = true;
            x_b[witness] = true;
            x_c[witness] = true;
            let single = NofDisjointnessInstance::new(x_a, x_b, x_c);
            assert!(has_triangle(&red.instantiate(&single)));
        }
    }

    #[test]
    fn reduction_semantics_on_random_instances() {
        let mut rng = ChaCha8Rng::seed_from_u64(0x305);
        let red = TriangleNofReduction::new(15);
        let m = red.elements();
        for t in 0..20 {
            let inst = if t % 2 == 0 {
                NofDisjointnessInstance::random_disjoint(m, &mut rng)
            } else {
                NofDisjointnessInstance::random_single_intersection(m, &mut rng)
            };
            let g = red.instantiate(&inst);
            assert_eq!(
                has_triangle(&g),
                !inst.is_disjoint(),
                "trial {t}: triangle presence must equal intersection"
            );
        }
    }

    #[test]
    fn structure_and_bounds() {
        let red = TriangleNofReduction::new(40);
        assert_eq!(red.vertex_count(), 240);
        assert!(red.parties_can_build_their_edges());
        assert!(red.elements() >= 40, "m(n) should grow with the parameter");
        let det = red.implied_bcast_rounds(DisjointnessBound::ThreePartyNofDeterministic, 1);
        let rand_bound = red.implied_bcast_rounds(DisjointnessBound::ThreePartyNofRandomized, 1);
        assert!(det > rand_bound, "Ω(m) beats Ω(√m) for these sizes");
    }

    #[test]
    fn owners_partition_the_vertices() {
        let red = TriangleNofReduction::new(10);
        let (mut a, mut b, mut c) = (0, 0, 0);
        for v in 0..red.vertex_count() {
            match red.owner(v) {
                NofParty::Alice => a += 1,
                NofParty::Bob => b += 1,
                NofParty::Charlie => c += 1,
            }
        }
        assert_eq!(a, 10);
        assert_eq!(b, 20);
        assert_eq!(c, 30);
    }
}
