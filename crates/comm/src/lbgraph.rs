//! (H, F)-lower-bound graphs (Definition 10) and the constructions of
//! Lemmas 14, 18 and 21.
//!
//! A lower-bound graph is a fixed template `G'` together with two families of
//! "player-controlled" edges — one internal to Alice's nodes, one internal to
//! Bob's — indexed by the edges of a dense auxiliary graph `F`. Instantiating
//! the template on a set-disjointness instance `(X, Y)` keeps Alice's edge
//! `e` iff `e ∈ X` and Bob's edge `e` iff `e ∈ Y`; by Observation 11 the
//! resulting graph contains a copy of the pattern `H` **iff** `X ∩ Y ≠ ∅`.
//! Combined with the simulation argument of Lemma 13 this turns any efficient
//! `H`-detection protocol for `CLIQUE-BCAST(n, b)` into a cheap two-party
//! protocol for disjointness on `|E_F|` elements, yielding the round lower
//! bounds of Theorems 15, 19 and 22.

use clique_graphs::extremal::dense_bipartite_c4_free;
use clique_graphs::iso::contains_subgraph;
use clique_graphs::{generators, Graph, Pattern};
use rand::Rng;

use crate::disjointness::{DisjointnessBound, DisjointnessInstance};

/// A concrete (H, F)-lower-bound graph: template plus player-controlled edge
/// families.
#[derive(Clone, Debug)]
pub struct LowerBoundGraph {
    pattern: Pattern,
    n: usize,
    fixed_edges: Vec<(usize, usize)>,
    alice_edges: Vec<(usize, usize)>,
    bob_edges: Vec<(usize, usize)>,
    alice_nodes: Vec<usize>,
    bob_nodes: Vec<usize>,
}

impl LowerBoundGraph {
    /// The pattern `H` whose detection the construction makes hard.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// Number of vertices of the template (the `n` of the clique model).
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// The number of set-disjointness elements, i.e. `|E_F|`.
    pub fn elements(&self) -> usize {
        self.alice_edges.len()
    }

    /// The template edges that are present in every instance.
    pub fn fixed_edges(&self) -> &[(usize, usize)] {
        &self.fixed_edges
    }

    /// Alice's controlled edge for each element.
    pub fn alice_edges(&self) -> &[(usize, usize)] {
        &self.alice_edges
    }

    /// Bob's controlled edge for each element.
    pub fn bob_edges(&self) -> &[(usize, usize)] {
        &self.bob_edges
    }

    /// The nodes simulated by Alice (a superset of the endpoints of her
    /// controlled edges).
    pub fn alice_nodes(&self) -> &[usize] {
        &self.alice_nodes
    }

    /// The nodes simulated by Bob.
    pub fn bob_nodes(&self) -> &[usize] {
        &self.bob_nodes
    }

    /// The full template `G'` (all fixed and all player-controlled edges).
    pub fn template_graph(&self) -> Graph {
        let mut g = Graph::empty(self.n);
        for &(u, v) in self
            .fixed_edges
            .iter()
            .chain(&self.alice_edges)
            .chain(&self.bob_edges)
        {
            g.add_edge(u, v);
        }
        g
    }

    /// Builds the input graph for a disjointness instance: all fixed edges,
    /// Alice's edge `k` iff `x[k]`, Bob's edge `k` iff `y[k]`.
    ///
    /// # Panics
    ///
    /// Panics if the instance universe differs from [`Self::elements`].
    pub fn instantiate(&self, instance: &DisjointnessInstance) -> Graph {
        assert_eq!(
            instance.universe(),
            self.elements(),
            "instance universe must equal the number of F-edges"
        );
        let mut g = Graph::empty(self.n);
        for &(u, v) in &self.fixed_edges {
            g.add_edge(u, v);
        }
        for (k, &(u, v)) in self.alice_edges.iter().enumerate() {
            if instance.x[k] {
                g.add_edge(u, v);
            }
        }
        for (k, &(u, v)) in self.bob_edges.iter().enumerate() {
            if instance.y[k] {
                g.add_edge(u, v);
            }
        }
        g
    }

    /// The number of edges of the template crossing the Alice/Bob node
    /// partition (the cut that bounds per-round communication in the
    /// CONGEST simulation; `δ = cut/|V'|` in Definition 12).
    pub fn cut_size(&self) -> usize {
        let alice: std::collections::HashSet<usize> = self.alice_nodes.iter().copied().collect();
        self.template_graph()
            .edges()
            .filter(|&(u, v)| alice.contains(&u) != alice.contains(&v))
            .count()
    }

    /// The round lower bound for `CLIQUE-BCAST(n, b)` implied by Lemma 13
    /// under the given disjointness bound: `bound(|E_F|) / (n·b)`.
    pub fn implied_bcast_rounds(&self, bound: DisjointnessBound, bandwidth: usize) -> f64 {
        bound.bits(self.elements() as u64) / (self.n as f64 * bandwidth as f64)
    }

    /// The round lower bound for `CONGEST-UCAST(n, b)` implied by Lemma 13
    /// when the template is `δ`-sparse: `bound(|E_F|) / (2·cut·b)`.
    pub fn implied_congest_rounds(&self, bound: DisjointnessBound, bandwidth: usize) -> f64 {
        let cut = self.cut_size().max(1);
        bound.bits(self.elements() as u64) / (2.0 * cut as f64 * bandwidth as f64)
    }

    /// Checks the semantic property of Observation 11 on crafted and random
    /// instances: the instantiated graph contains `H` exactly when the
    /// instance is intersecting. Intended for moderate sizes (it runs a
    /// subgraph-isomorphism search per instance).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated instance.
    pub fn check_reduction_semantics<R: Rng + ?Sized>(
        &self,
        random_trials: usize,
        rng: &mut R,
    ) -> Result<(), String> {
        let h = self.pattern.graph();
        let m = self.elements();
        let check = |inst: &DisjointnessInstance, what: &str| -> Result<(), String> {
            let g = self.instantiate(inst);
            let found = contains_subgraph(&g, &h);
            let expected = !inst.is_disjoint();
            if found != expected {
                return Err(format!(
                    "{what}: contains({}) = {found}, but instance {} disjoint",
                    self.pattern,
                    if inst.is_disjoint() { "is" } else { "is not" }
                ));
            }
            Ok(())
        };

        // Crafted corner cases.
        check(
            &DisjointnessInstance::new(vec![false; m], vec![false; m]),
            "empty/empty",
        )?;
        check(
            &DisjointnessInstance::new(vec![true; m], vec![false; m]),
            "full/empty",
        )?;
        check(
            &DisjointnessInstance::new(vec![false; m], vec![true; m]),
            "empty/full",
        )?;
        if m >= 2 {
            // Complementary sets: heavily populated but still disjoint.
            let x: Vec<bool> = (0..m).map(|k| k % 2 == 0).collect();
            let y: Vec<bool> = (0..m).map(|k| k % 2 == 1).collect();
            check(&DisjointnessInstance::new(x, y), "odd/even split")?;
        }
        check(
            &DisjointnessInstance::new(vec![true; m], vec![true; m]),
            "full/full",
        )?;
        for witness in [0, m / 2, m - 1] {
            let mut x = vec![false; m];
            let mut y = vec![false; m];
            x[witness] = true;
            y[witness] = true;
            check(
                &DisjointnessInstance::new(x, y),
                &format!("single witness {witness}"),
            )?;
        }
        // Random instances.
        for t in 0..random_trials {
            let inst = if t % 2 == 0 {
                DisjointnessInstance::random_disjoint(m, rng)
            } else {
                DisjointnessInstance::random_single_intersection(m, rng)
            };
            check(&inst, &format!("random trial {t}"))?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Constructions
    // ------------------------------------------------------------------

    /// The (K_ℓ, K_{N,N}) construction of Lemma 14: `K_ℓ`-detection on `n`
    /// nodes encodes disjointness on `Θ(n²)` elements.
    ///
    /// # Errors
    ///
    /// Returns an error if `l < 4` or `n` is too small to host the gadget.
    pub fn for_clique(l: usize, n: usize) -> Result<Self, String> {
        if l < 4 {
            return Err(format!("Lemma 14 needs ℓ ≥ 4, got {l}"));
        }
        if n < l + 4 {
            return Err(format!("n = {n} too small for K{l} lower-bound graph"));
        }
        // 4N + (ℓ - 4) ≤ n.
        let cap = (n - (l - 4)) / 4;
        if cap < 2 {
            return Err(format!(
                "n = {n} too small: need at least 2 nodes per group"
            ));
        }
        let big_n = cap;
        let s1 = |i: usize| i;
        let s2 = |j: usize| big_n + j;
        let s3 = |i: usize| 2 * big_n + i;
        let s4 = |j: usize| 3 * big_n + j;
        let universal_start = 4 * big_n;
        let universal_count = l - 4;

        let mut fixed = Vec::new();
        // Matchings S1–S3 and S2–S4 force the two K4 witnesses to agree.
        for i in 0..big_n {
            fixed.push((s1(i), s3(i)));
            fixed.push((s2(i), s4(i)));
        }
        // Complete bipartite S1–S4 and S2–S3.
        for i in 0..big_n {
            for j in 0..big_n {
                fixed.push((s1(i), s4(j)));
                fixed.push((s2(i), s3(j)));
            }
        }
        // The ℓ-4 universal nodes are adjacent to every non-padding node and
        // to each other.
        for t in 0..universal_count {
            let u = universal_start + t;
            for v in 0..universal_start {
                fixed.push((u, v));
            }
            for t2 in (t + 1)..universal_count {
                fixed.push((u, universal_start + t2));
            }
        }

        // Elements: pairs (i, j) ∈ [N] × [N]; Alice's edge is {s1_i, s2_j},
        // Bob's is {s3_i, s4_j}.
        let mut alice_edges = Vec::with_capacity(big_n * big_n);
        let mut bob_edges = Vec::with_capacity(big_n * big_n);
        for i in 0..big_n {
            for j in 0..big_n {
                alice_edges.push((s1(i), s2(j)));
                bob_edges.push((s3(i), s4(j)));
            }
        }

        let mut alice_nodes: Vec<usize> = (0..2 * big_n).collect();
        let mut bob_nodes: Vec<usize> = (2 * big_n..4 * big_n).collect();
        // Split the universal and padding nodes evenly.
        for (idx, v) in (universal_start..n).enumerate() {
            if idx % 2 == 0 {
                alice_nodes.push(v);
            } else {
                bob_nodes.push(v);
            }
        }

        Ok(Self {
            pattern: Pattern::Clique(l),
            n,
            fixed_edges: fixed,
            alice_edges,
            bob_edges,
            alice_nodes,
            bob_nodes,
        })
    }

    /// The (C_ℓ, F) construction of Lemma 18 with `F` a dense *bipartite*
    /// `C_ℓ`-free graph: `C_ℓ`-detection encodes disjointness on
    /// `Θ(ex(N, C_ℓ))` elements, and the template is `O(1)`-sparse so the
    /// bound also applies to `CONGEST-UCAST`.
    ///
    /// # Errors
    ///
    /// Returns an error if `l < 4` or `n` is too small.
    pub fn for_cycle<R: Rng + ?Sized>(l: usize, n: usize, rng: &mut R) -> Result<Self, String> {
        if l < 4 {
            return Err(format!("Lemma 18 needs ℓ ≥ 4, got {l}"));
        }
        // Total vertices: N·ℓ/2 (VA, VB and the internal path nodes).
        let big_n = ((2 * n) / l) & !1; // round down to an even number
        if big_n < 4 {
            return Err(format!("n = {n} too small for C{l} lower-bound graph"));
        }
        let half = big_n / 2;
        let f = bipartite_cycle_free(big_n, l, rng);
        let va = |i: usize| i;
        let vb = |i: usize| big_n + i;
        let mut next_free = 2 * big_n;

        // Fixed edges: the path P_i from va_i to vb_i.
        let mut fixed = Vec::new();
        for i in 0..big_n {
            let len = if i < half {
                l / 2 - 1
            } else {
                l.div_ceil(2) - 1
            };
            let mut prev = va(i);
            for _ in 0..len.saturating_sub(1) {
                let node = next_free;
                next_free += 1;
                fixed.push((prev, node));
                prev = node;
            }
            fixed.push((prev, vb(i)));
        }
        if next_free > n {
            return Err(format!(
                "internal miscalculation: construction needs {next_free} > n = {n} vertices"
            ));
        }

        // Elements: the edges of F; Alice's copy lives on VA, Bob's on VB.
        let mut alice_edges = Vec::new();
        let mut bob_edges = Vec::new();
        for (i, j) in f.edges() {
            alice_edges.push((va(i), va(j)));
            bob_edges.push((vb(i), vb(j)));
        }
        if alice_edges.is_empty() {
            return Err(format!("no F-edges available for C{l} at n = {n}"));
        }

        // Alice simulates VA plus the internal nodes of the first-half paths;
        // Bob simulates the rest, so the cut is small (O(N) path edges).
        let alice_nodes: Vec<usize> = (0..big_n).chain(2 * big_n..next_free).collect();
        let bob_nodes: Vec<usize> = (big_n..2 * big_n).chain(next_free..n).collect();

        Ok(Self {
            pattern: Pattern::Cycle(l),
            n,
            fixed_edges: fixed,
            alice_edges,
            bob_edges,
            alice_nodes,
            bob_nodes,
        })
    }

    /// The (K_{ℓ,m}, F) construction of Lemma 21 with `F` a bipartite
    /// `C₄`-free graph: `K_{ℓ,m}`-detection encodes disjointness on
    /// `Θ(ex(N, C₄)) = Θ(N^{3/2})` elements.
    ///
    /// The construction is provided for balanced patterns `ℓ = m`. For
    /// `ℓ ≠ m` the gadget as written in the paper admits spurious
    /// (non-induced) copies of `K_{ℓ,m}` built from the `W`-nodes, one
    /// vertex of one player's copy of `F`, and that player's edges alone
    /// (e.g. for `K_{2,3}`: a degree-3 vertex of `F_A` together with the
    /// `W_R` node), so Observation 11 fails; see EXPERIMENTS.md (E8) for the
    /// discussion of this deviation. Balanced side sizes already exercise
    /// the Theorem 22 bound `Ω(√n/b)`.
    ///
    /// # Errors
    ///
    /// Returns an error if the side sizes are outside the supported range or
    /// `n` is too small.
    pub fn for_complete_bipartite(l: usize, m: usize, n: usize) -> Result<Self, String> {
        if l < 2 || m < 2 {
            return Err(format!("Lemma 21 needs ℓ, m ≥ 2, got ({l}, {m})"));
        }
        if l != m {
            return Err(format!(
                "the Lemma 21 gadget is only sound (for non-induced detection) when ℓ = m; got ({l}, {m})"
            ));
        }
        let extra = (l - 2) + (m - 2);
        if n < extra + 16 {
            return Err(format!("n = {n} too small for K{l},{m} lower-bound graph"));
        }
        let big_n = (n - extra) / 2;
        let f_raw = dense_bipartite_c4_free(big_n);
        if f_raw.edge_count() == 0 {
            return Err(format!(
                "no C4-free bipartite graph available at N = {big_n}"
            ));
        }
        let coloring = f_raw.bipartition().expect("incidence graphs are bipartite");
        let left: Vec<usize> = (0..big_n).filter(|&v| !coloring[v]).collect();

        let u = |i: usize| i;
        let v = |i: usize| big_n + i;
        let wl_start = 2 * big_n;
        let wr_start = wl_start + (l - 2);

        let mut fixed = Vec::new();
        // WL × WR complete.
        for a in 0..(l - 2) {
            for b in 0..(m - 2) {
                fixed.push((wl_start + a, wr_start + b));
            }
        }
        // WL adjacent to φA(R) ∪ φB(L); WR adjacent to φA(L) ∪ φB(R).
        let left_set: std::collections::HashSet<usize> = left.iter().copied().collect();
        for i in 0..big_n {
            let in_left = left_set.contains(&i);
            for a in 0..(l - 2) {
                let wl = wl_start + a;
                if in_left {
                    fixed.push((wl, v(i)));
                } else {
                    fixed.push((wl, u(i)));
                }
            }
            for b in 0..(m - 2) {
                let wr = wr_start + b;
                if in_left {
                    fixed.push((wr, u(i)));
                } else {
                    fixed.push((wr, v(i)));
                }
            }
        }
        // The perfect matching {u_i, v_i}.
        for i in 0..big_n {
            fixed.push((u(i), v(i)));
        }

        let mut alice_edges = Vec::new();
        let mut bob_edges = Vec::new();
        for (i, j) in f_raw.edges() {
            alice_edges.push((u(i), u(j)));
            bob_edges.push((v(i), v(j)));
        }

        let mut alice_nodes: Vec<usize> = (0..big_n).collect();
        alice_nodes.extend(wl_start..wr_start);
        let mut bob_nodes: Vec<usize> = (big_n..2 * big_n).collect();
        bob_nodes.extend(wr_start..n);

        Ok(Self {
            pattern: Pattern::CompleteBipartite(l, m),
            n,
            fixed_edges: fixed,
            alice_edges,
            bob_edges,
            alice_nodes,
            bob_nodes,
        })
    }
}

/// A dense `C_ℓ`-free *bipartite* graph on `n` vertices whose two sides are
/// `0..n/2` and `n/2..n` (the side structure Lemma 18 needs so that the
/// connecting paths add up to length exactly `ℓ`).
fn bipartite_cycle_free<R: Rng + ?Sized>(n: usize, l: usize, rng: &mut R) -> Graph {
    let half = n / 2;
    if l % 2 == 1 {
        // Odd cycles: the complete bipartite graph is C_ℓ-free and extremal.
        let mut g = Graph::empty(n);
        for i in 0..half {
            for j in half..n {
                g.add_edge(i, j);
            }
        }
        return g;
    }
    if l == 4 {
        // Relabel a projective incidence graph so that points occupy the
        // first half and lines the second half.
        let raw = dense_bipartite_c4_free(n);
        let coloring = match raw.bipartition() {
            Some(c) => c,
            None => return Graph::empty(n),
        };
        let mut first: Vec<usize> = Vec::new();
        let mut second: Vec<usize> = Vec::new();
        for (vtx, &side) in coloring.iter().enumerate() {
            if side {
                second.push(vtx);
            } else {
                first.push(vtx);
            }
        }
        let mut relabel = vec![usize::MAX; n];
        for (pos, &vtx) in first.iter().enumerate() {
            if pos < half {
                relabel[vtx] = pos;
            }
        }
        for (pos, &vtx) in second.iter().enumerate() {
            if half + pos < n {
                relabel[vtx] = half + pos;
            }
        }
        let mut g = Graph::empty(n);
        for (a, b) in raw.edges() {
            if relabel[a] != usize::MAX && relabel[b] != usize::MAX {
                g.add_edge(relabel[a], relabel[b]);
            }
        }
        return g;
    }
    // Even ℓ ≥ 6: greedy construction restricted to cross-side pairs. We
    // reuse the generic greedy helper on the bipartite double cover trick by
    // simply filtering candidate pairs.
    let pattern = generators::cycle(l);
    let mut g = Graph::empty(n);
    let mut pairs: Vec<(usize, usize)> = (0..half)
        .flat_map(|i| (half..n).map(move |j| (i, j)))
        .collect();
    use rand::seq::SliceRandom;
    pairs.shuffle(rng);
    let attempts = 6 * n;
    for &(i, j) in pairs.iter().take(attempts.min(pairs.len())) {
        g.add_edge(i, j);
        if contains_subgraph(&g, &pattern) {
            g.remove_edge(i, j);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use clique_graphs::iso;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(0x1B)
    }

    #[test]
    fn clique_lower_bound_graph_semantics() {
        let mut r = rng();
        for l in [4usize, 5, 6] {
            let lbg = LowerBoundGraph::for_clique(l, 30).unwrap();
            assert!(lbg.elements() >= 16, "too few elements for K{l}");
            lbg.check_reduction_semantics(6, &mut r)
                .unwrap_or_else(|e| panic!("K{l}: {e}"));
        }
    }

    #[test]
    fn clique_lower_bound_has_quadratically_many_elements() {
        let lbg = LowerBoundGraph::for_clique(4, 64).unwrap();
        // N = 16, elements = N² = 256.
        assert_eq!(lbg.elements(), 256);
        assert!(lbg.implied_bcast_rounds(DisjointnessBound::TwoPartyDeterministic, 1) >= 4.0);
    }

    #[test]
    fn cycle_lower_bound_graph_semantics() {
        let mut r = rng();
        for l in [4usize, 5, 6] {
            let lbg = LowerBoundGraph::for_cycle(l, 36, &mut r).unwrap();
            assert!(lbg.elements() >= 4, "too few elements for C{l}");
            lbg.check_reduction_semantics(6, &mut r)
                .unwrap_or_else(|e| panic!("C{l}: {e}"));
        }
    }

    #[test]
    fn cycle_lower_bound_is_sparse_across_the_cut() {
        let mut r = rng();
        let lbg = LowerBoundGraph::for_cycle(5, 60, &mut r).unwrap();
        // The cut consists of one edge per connecting path, i.e. N edges out
        // of Θ(N²) total (F = K_{N/2,N/2} for odd cycles).
        let n_vertices = lbg.vertex_count();
        assert!(
            lbg.cut_size() <= n_vertices,
            "cut {} too large",
            lbg.cut_size()
        );
        assert!(
            lbg.implied_congest_rounds(DisjointnessBound::TwoPartyDeterministic, 1)
                > lbg.implied_bcast_rounds(DisjointnessBound::TwoPartyDeterministic, 1) / 4.0
        );
    }

    #[test]
    fn complete_bipartite_lower_bound_graph_semantics() {
        let mut r = rng();
        for (l, m) in [(2usize, 2usize), (3, 3), (4, 4)] {
            let lbg = LowerBoundGraph::for_complete_bipartite(l, m, 44).unwrap();
            assert!(lbg.elements() >= 8, "too few elements for K{l},{m}");
            lbg.check_reduction_semantics(6, &mut r)
                .unwrap_or_else(|e| panic!("K{l},{m}: {e}"));
        }
    }

    #[test]
    fn unsupported_bipartite_side_sizes_are_rejected() {
        assert!(LowerBoundGraph::for_complete_bipartite(2, 3, 60).is_err());
        assert!(LowerBoundGraph::for_complete_bipartite(4, 2, 60).is_err());
        assert!(LowerBoundGraph::for_complete_bipartite(1, 1, 60).is_err());
    }

    #[test]
    fn template_contains_pattern_only_via_matched_pairs() {
        // With all Alice edges but no Bob edges, no copy of H may exist.
        let lbg = LowerBoundGraph::for_clique(4, 28).unwrap();
        let m = lbg.elements();
        let only_alice = lbg.instantiate(&DisjointnessInstance::new(vec![true; m], vec![false; m]));
        assert!(!iso::contains_subgraph(&only_alice, &lbg.pattern().graph()));
        // The full template (both sides complete) of course contains H.
        let full = lbg.instantiate(&DisjointnessInstance::new(vec![true; m], vec![true; m]));
        assert!(iso::contains_subgraph(&full, &lbg.pattern().graph()));
    }

    #[test]
    fn constructions_reject_bad_parameters() {
        assert!(LowerBoundGraph::for_clique(3, 100).is_err());
        assert!(LowerBoundGraph::for_clique(4, 6).is_err());
        let mut r = rng();
        assert!(LowerBoundGraph::for_cycle(3, 100, &mut r).is_err());
        assert!(LowerBoundGraph::for_cycle(6, 4, &mut r).is_err());
        assert!(LowerBoundGraph::for_complete_bipartite(1, 3, 100).is_err());
        assert!(LowerBoundGraph::for_complete_bipartite(2, 2, 5).is_err());
    }

    #[test]
    fn node_partition_covers_controlled_edges() {
        let mut r = rng();
        let graphs = vec![
            LowerBoundGraph::for_clique(5, 40).unwrap(),
            LowerBoundGraph::for_cycle(4, 40, &mut r).unwrap(),
            LowerBoundGraph::for_complete_bipartite(3, 3, 40).unwrap(),
        ];
        for lbg in graphs {
            let alice: std::collections::HashSet<usize> =
                lbg.alice_nodes().iter().copied().collect();
            let bob: std::collections::HashSet<usize> = lbg.bob_nodes().iter().copied().collect();
            assert!(alice.is_disjoint(&bob));
            assert_eq!(alice.len() + bob.len(), lbg.vertex_count());
            for &(u, v) in lbg.alice_edges() {
                assert!(alice.contains(&u) && alice.contains(&v));
            }
            for &(u, v) in lbg.bob_edges() {
                assert!(bob.contains(&u) && bob.contains(&v));
            }
        }
    }

    #[test]
    fn bipartite_cycle_free_helper_has_correct_sides() {
        let mut r = rng();
        for l in [4usize, 5, 6] {
            let g = bipartite_cycle_free(20, l, &mut r);
            for (u, v) in g.edges() {
                assert!(
                    (u < 10) != (v < 10),
                    "edge ({u},{v}) does not cross the halves for ℓ = {l}"
                );
            }
            assert!(!iso::contains_subgraph(&g, &generators::cycle(l)));
            assert!(g.edge_count() > 0);
        }
    }
}
