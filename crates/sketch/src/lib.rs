//! # clique-sketch — finite-field sketches for one-round graph reconstruction
//!
//! The subgraph-detection upper bounds of the paper (Theorems 7 and 9) are
//! built on the one-round protocol of Becker et al. \[2\]: in a graph of
//! degeneracy at most `k`, every node can publish an `O(k log n)`-bit sketch
//! of its neighbourhood from which the entire graph can be reconstructed.
//! This crate implements that substrate:
//!
//! * [`field`] — prime-field arithmetic (`F_p`, `p > n`),
//! * [`sketch`] — linear power-sum sketches of vertex sets with exact
//!   decoding via Newton's identities and locator-polynomial root finding,
//! * [`mod@reconstruct`] — the encode/peel-decode pair implementing algorithm
//!   `A(G, k)` of Section 3.1, including detection of the failure case
//!   "degeneracy larger than `k`",
//! * [`signed`] — signed (±1-multiplicity) power-sum sketches whose
//!   component-wise sums cancel internal edges, the edge-incidence
//!   summaries behind the sketch-based MST protocol.
//!
//! # Examples
//!
//! ```
//! use clique_graphs::generators;
//! use clique_sketch::reconstruct::{message_bits, reconstruct};
//!
//! // A cycle has degeneracy 2, so capacity-2 sketches reconstruct it.
//! let g = generators::cycle(32);
//! assert_eq!(reconstruct(&g, 2).unwrap(), g);
//! // Each node's message is O(k log n) bits.
//! assert!(message_bits(32, 2) <= 3 * 6 + 6);
//!
//! // A clique has degeneracy n-1: capacity-2 sketches report failure instead
//! // of reconstructing something wrong.
//! let k6 = generators::complete(6);
//! assert!(reconstruct(&k6, 2).is_err());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod field;
pub mod reconstruct;
pub mod signed;
pub mod sketch;

pub use field::PrimeField;
pub use reconstruct::{decode_graph, encode_graph, reconstruct, DecodeError, NodeSketch};
pub use signed::SignedPowerSumSketch;
pub use sketch::PowerSumSketch;
