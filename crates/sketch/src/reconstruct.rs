//! One-round graph reconstruction from bounded-degeneracy sketches.
//!
//! This module implements the protocol of Becker, Matamala, Nisse, Rapaport,
//! Suchan and Todinca ("Adding a referee to an interconnection network",
//! IPDPS 2011) that the paper uses as algorithm `A(G, k)` in Section 3.1:
//! every node simultaneously publishes an `O(k log n)`-bit sketch of its
//! neighbourhood, and from the `n` sketches alone any referee can reconstruct
//! the entire graph *provided its degeneracy is at most `k`* — and detect
//! that the degeneracy exceeds `k` otherwise.
//!
//! Encoding: node `v` publishes `(deg(v), power sums of N(v))` with sketch
//! capacity `k` ([`encode_graph`]). Decoding ([`decode_graph`]) peels the
//! graph: while some vertex has at most `k` unrecovered incident edges, its
//! residual sketch is decoded exactly, the recovered edges are added to the
//! output and subtracted from the other endpoint's sketch. Because every
//! subgraph of a degeneracy-`k` graph has a vertex of degree at most `k`,
//! peeling never gets stuck when the degeneracy bound holds; when it does
//! get stuck (or any decoded data is inconsistent) the decoder reports
//! failure, which the detection algorithms of Theorems 7 and 9 interpret as
//! "degeneracy larger than `k`".

use clique_graphs::Graph;

use crate::sketch::{sketch_bits, PowerSumSketch};

/// The sketch a single node publishes: its degree and the power-sum sketch of
/// its neighbourhood.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeSketch {
    /// The node's degree in the input graph.
    pub degree: usize,
    /// Power-sum sketch of the neighbour set (capacity `k`).
    pub sketch: PowerSumSketch,
}

impl NodeSketch {
    /// Number of bits this sketch occupies on the blackboard.
    pub fn encoded_bits(&self) -> usize {
        self.sketch.encoded_bits()
    }
}

/// Why decoding failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Peeling got stuck: every unfinished vertex has more than `k`
    /// unrecovered incident edges, so the degeneracy of the input graph
    /// exceeds the sketch capacity.
    DegeneracyExceeded {
        /// The sketch capacity that proved insufficient.
        capacity: usize,
    },
    /// A residual sketch failed to decode or decoded to inconsistent data;
    /// with honestly-encoded inputs this also indicates that the degeneracy
    /// bound was violated.
    Inconsistent,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::DegeneracyExceeded { capacity } => {
                write!(f, "graph degeneracy exceeds sketch capacity {capacity}")
            }
            DecodeError::Inconsistent => write!(f, "sketches are mutually inconsistent"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encodes the neighbourhood sketches of every node of `graph` with capacity
/// `k` (the messages of algorithm `A(G, k)`).
///
/// # Panics
///
/// Panics if `k == 0` or the graph has no vertices.
pub fn encode_graph(graph: &Graph, k: usize) -> Vec<NodeSketch> {
    let n = graph.vertex_count();
    assert!(n > 0, "cannot sketch the empty graph");
    assert!(k > 0, "sketch capacity must be positive");
    (0..n)
        .map(|v| {
            let mut sketch = PowerSumSketch::new(n as u64, k);
            for &u in graph.neighbors(v) {
                sketch.add(u as u64);
            }
            NodeSketch {
                degree: graph.degree(v),
                sketch,
            }
        })
        .collect()
}

/// Reconstructs the graph from the published sketches.
///
/// # Errors
///
/// Returns [`DecodeError::DegeneracyExceeded`] when the peeling process gets
/// stuck (the input graph has degeneracy larger than the sketch capacity) and
/// [`DecodeError::Inconsistent`] when a residual sketch cannot be decoded or
/// decodes to data inconsistent with the other sketches.
pub fn decode_graph(sketches: &[NodeSketch]) -> Result<Graph, DecodeError> {
    let n = sketches.len();
    let capacity = sketches
        .first()
        .map(|s| s.sketch.capacity())
        .unwrap_or_default();
    let mut graph = Graph::empty(n);
    if n == 0 {
        return Ok(graph);
    }

    // Residual state: sketches minus recovered edges.
    let mut residual: Vec<PowerSumSketch> = sketches.iter().map(|s| s.sketch.clone()).collect();
    let mut residual_degree: Vec<i64> = sketches.iter().map(|s| s.degree as i64).collect();
    let mut finished = vec![false; n];

    loop {
        // Anything with residual degree 0 is finished (its sketch must be
        // zero; otherwise the input is inconsistent).
        for v in 0..n {
            if !finished[v] && residual_degree[v] == 0 {
                if !residual[v].is_zero() {
                    return Err(DecodeError::Inconsistent);
                }
                finished[v] = true;
            }
        }
        // Pick an unfinished vertex with residual degree at most k.
        let candidate = (0..n).find(|&v| {
            !finished[v] && residual_degree[v] > 0 && residual_degree[v] <= capacity as i64
        });
        let v = match candidate {
            Some(v) => v,
            None => {
                return if finished.iter().all(|&f| f) {
                    Ok(graph)
                } else {
                    Err(DecodeError::DegeneracyExceeded { capacity })
                };
            }
        };

        let neighbors = residual[v].decode().ok_or(DecodeError::Inconsistent)?;
        if neighbors.len() as i64 != residual_degree[v] {
            return Err(DecodeError::Inconsistent);
        }
        for &u64_u in &neighbors {
            let u = u64_u as usize;
            if u >= n || u == v {
                return Err(DecodeError::Inconsistent);
            }
            if finished[u] || residual_degree[u] <= 0 || graph.has_edge(u, v) {
                return Err(DecodeError::Inconsistent);
            }
            graph.add_edge(u, v);
            // Peel the edge out of u's residual sketch.
            residual[u].remove(v as u64);
            residual_degree[u] -= 1;
        }
        // v is fully recovered.
        residual_degree[v] = 0;
        let expected_count = neighbors.len() as i64;
        // Its own residual sketch is consumed entirely.
        let mut consumed = PowerSumSketch::new(residual[v].universe(), capacity);
        for &u in &neighbors {
            consumed.add(u);
        }
        residual[v].subtract(&consumed);
        if residual[v].count() != 0 && expected_count != 0 && !residual[v].is_zero() {
            return Err(DecodeError::Inconsistent);
        }
        finished[v] = true;
    }
}

/// Runs encode + decode in one call: the "omniscient referee" version used in
/// tests and by the detection algorithms after the broadcast phase.
///
/// # Errors
///
/// See [`decode_graph`].
pub fn reconstruct(graph: &Graph, k: usize) -> Result<Graph, DecodeError> {
    decode_graph(&encode_graph(graph, k))
}

/// The number of blackboard bits each node publishes for a graph on `n`
/// nodes with sketch capacity `k`: `O(k log n)`.
pub fn message_bits(n: usize, k: usize) -> usize {
    // Degree (⌈log₂ n⌉ bits) + the power-sum sketch.
    let degree_bits = if n <= 1 {
        0
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as usize
    };
    degree_bits + sketch_bits(n as u64, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clique_graphs::{degeneracy::degeneracy, generators};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn reconstruct_simple_families() {
        for (graph, k) in [
            (generators::path(20), 1),
            (generators::cycle(15), 2),
            (generators::star(12), 1),
            (generators::complete(6), 5),
            (generators::complete_bipartite(3, 9), 3),
            (generators::turan_graph(12, 3), 8),
        ] {
            let decoded = reconstruct(&graph, k).unwrap_or_else(|e| {
                panic!("reconstruction failed for k={k}: {e}");
            });
            assert_eq!(decoded, graph);
        }
    }

    #[test]
    fn reconstruct_with_exact_degeneracy_capacity() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        for _ in 0..10 {
            let graph = generators::random_bounded_degeneracy(40, 4, &mut rng);
            let d = degeneracy(&graph);
            let decoded = reconstruct(&graph, d.max(1)).expect("capacity = degeneracy suffices");
            assert_eq!(decoded, graph);
        }
    }

    #[test]
    fn capacity_below_degeneracy_is_detected() {
        let graph = generators::complete(8); // degeneracy 7
        match reconstruct(&graph, 3) {
            Err(DecodeError::DegeneracyExceeded { capacity }) => assert_eq!(capacity, 3),
            other => panic!("expected DegeneracyExceeded, got {other:?}"),
        }
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let graph = Graph::empty(9);
        assert_eq!(reconstruct(&graph, 1).unwrap(), graph);
        assert_eq!(decode_graph(&[]).unwrap(), Graph::empty(0));
    }

    #[test]
    fn random_graphs_round_trip_when_capacity_sufficient() {
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        for _ in 0..8 {
            let graph = generators::erdos_renyi(30, 0.15, &mut rng);
            let d = degeneracy(&graph).max(1);
            assert_eq!(reconstruct(&graph, d).unwrap(), graph);
            assert_eq!(reconstruct(&graph, d + 3).unwrap(), graph);
        }
    }

    #[test]
    fn tampered_sketches_are_rejected_not_misdecoded() {
        let graph = generators::cycle(10);
        let mut sketches = encode_graph(&graph, 2);
        // Corrupt one node's degree field.
        sketches[3].degree = 7;
        let result = decode_graph(&sketches);
        assert!(result.is_err(), "tampered input must not decode silently");
    }

    #[test]
    fn message_bits_grow_with_k_and_n() {
        let base = message_bits(64, 2);
        assert!(message_bits(64, 8) > base * 2);
        assert!(message_bits(1024, 2) > base);
        // O(k log n): generous explicit cap.
        assert!(message_bits(1024, 8) <= 8 * 12 + 24);
    }

    #[test]
    fn encoded_bits_reported_per_node() {
        let graph = generators::cycle(16);
        let sketches = encode_graph(&graph, 2);
        for s in &sketches {
            assert_eq!(s.encoded_bits(), sketch_bits(16, 2));
        }
    }
}
