//! Prime-field arithmetic for the power-sum sketches.
//!
//! The sketches encode neighbour sets as power sums over a prime field
//! `F_p` with `p` larger than both the universe of node identifiers and the
//! sketch capacity `k` (so that Newton's identities, which divide by
//! `1, …, k`, are well defined). All arithmetic is done on `u64` values with
//! `p < 2³¹`, so products never overflow.

use std::fmt;

/// A prime field `F_p` with `p < 2³¹`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PrimeField {
    p: u64,
}

impl PrimeField {
    /// Creates the field `F_p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a prime below `2³¹`.
    pub fn new(p: u64) -> Self {
        assert!(
            (2..(1 << 31)).contains(&p),
            "modulus {p} out of supported range"
        );
        assert!(is_prime_u64(p), "modulus {p} is not prime");
        Self { p }
    }

    /// The field suitable for sketching subsets of `{0, …, universe-1}` with
    /// capacity `k`: the smallest prime exceeding both `universe` and `k`.
    pub fn for_universe(universe: u64, k: u64) -> Self {
        Self::new(next_prime(universe.max(k).max(2) + 1))
    }

    /// The modulus `p`.
    pub fn modulus(&self) -> u64 {
        self.p
    }

    /// Number of bits needed to transmit a field element.
    pub fn element_bits(&self) -> usize {
        clique_element_bits(self.p)
    }

    /// Reduces an arbitrary integer into the field.
    pub fn reduce(&self, x: u64) -> u64 {
        x % self.p
    }

    /// Addition in `F_p`.
    pub fn add(&self, a: u64, b: u64) -> u64 {
        (a + b) % self.p
    }

    /// Subtraction in `F_p`.
    pub fn sub(&self, a: u64, b: u64) -> u64 {
        (a + self.p - b % self.p) % self.p
    }

    /// Negation in `F_p`.
    pub fn neg(&self, a: u64) -> u64 {
        (self.p - a % self.p) % self.p
    }

    /// Multiplication in `F_p`.
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        (a % self.p) * (b % self.p) % self.p
    }

    /// Exponentiation `a^e` in `F_p`.
    pub fn pow(&self, a: u64, mut e: u64) -> u64 {
        let mut base = a % self.p;
        let mut acc = 1u64;
        while e > 0 {
            if e & 1 == 1 {
                acc = self.mul(acc, base);
            }
            base = self.mul(base, base);
            e >>= 1;
        }
        acc
    }

    /// Multiplicative inverse of a nonzero element (via Fermat's little
    /// theorem).
    ///
    /// # Panics
    ///
    /// Panics if `a ≡ 0 (mod p)`.
    pub fn inv(&self, a: u64) -> u64 {
        assert!(
            !a.is_multiple_of(self.p),
            "zero has no multiplicative inverse"
        );
        self.pow(a, self.p - 2)
    }

    /// Evaluates the polynomial with the given coefficients (constant term
    /// first) at `x`, by Horner's rule.
    pub fn eval_poly(&self, coefficients: &[u64], x: u64) -> u64 {
        let mut acc = 0u64;
        for &c in coefficients.iter().rev() {
            acc = self.add(self.mul(acc, x), c);
        }
        acc
    }
}

impl fmt::Display for PrimeField {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F_{}", self.p)
    }
}

fn clique_element_bits(p: u64) -> usize {
    (64 - (p - 1).leading_zeros()) as usize
}

/// Deterministic Miller–Rabin primality test, exact for all `u64` values.
pub fn is_prime_u64(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for small in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n.is_multiple_of(small) {
            return n == small;
        }
    }
    let mut d = n - 1;
    let mut r = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        r += 1;
    }
    'witness: for &a in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = mod_pow_u128(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = ((x as u128 * x as u128) % n as u128) as u64;
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

fn mod_pow_u128(mut base: u64, mut exp: u64, modulus: u64) -> u64 {
    let mut acc: u128 = 1;
    let m = modulus as u128;
    let mut b = base as u128 % m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = acc * b % m;
        }
        b = b * b % m;
        exp >>= 1;
    }
    base = acc as u64;
    base
}

/// The smallest prime `≥ x`.
pub fn next_prime(mut x: u64) -> u64 {
    if x <= 2 {
        return 2;
    }
    if x.is_multiple_of(2) {
        x += 1;
    }
    while !is_prime_u64(x) {
        x += 2;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primality_and_next_prime() {
        assert!(is_prime_u64(2));
        assert!(is_prime_u64(3));
        assert!(!is_prime_u64(1));
        assert!(!is_prime_u64(0));
        assert!(is_prime_u64(101));
        assert!(!is_prime_u64(1001));
        assert!(is_prime_u64(2_147_483_647)); // 2^31 - 1
        assert_eq!(next_prime(0), 2);
        assert_eq!(next_prime(8), 11);
        assert_eq!(next_prime(11), 11);
        assert_eq!(next_prime(1000), 1009);
    }

    #[test]
    fn field_construction() {
        let f = PrimeField::new(101);
        assert_eq!(f.modulus(), 101);
        assert_eq!(f.element_bits(), 7);
        let g = PrimeField::for_universe(1000, 10);
        assert!(g.modulus() > 1000);
        assert!(is_prime_u64(g.modulus()));
    }

    #[test]
    #[should_panic(expected = "not prime")]
    fn composite_modulus_rejected() {
        let _ = PrimeField::new(100);
    }

    #[test]
    fn arithmetic_identities() {
        let f = PrimeField::new(97);
        for a in [0u64, 1, 5, 50, 96] {
            for b in [0u64, 1, 13, 96] {
                assert_eq!(f.add(a, b), (a + b) % 97);
                assert_eq!(f.add(f.sub(a, b), b), a % 97);
                assert_eq!(f.mul(a, b), a * b % 97);
                assert_eq!(f.add(a, f.neg(a)), 0);
            }
        }
        assert_eq!(f.pow(3, 0), 1);
        assert_eq!(f.pow(3, 5), 243 % 97);
        // Fermat: a^(p-1) = 1.
        assert_eq!(f.pow(10, 96), 1);
    }

    #[test]
    fn inverses() {
        let f = PrimeField::new(101);
        for a in 1..101u64 {
            assert_eq!(f.mul(a, f.inv(a)), 1);
        }
    }

    #[test]
    #[should_panic(expected = "no multiplicative inverse")]
    fn zero_inverse_panics() {
        let f = PrimeField::new(101);
        let _ = f.inv(0);
    }

    #[test]
    fn polynomial_evaluation() {
        let f = PrimeField::new(97);
        // 3 + 2x + x^2 at x = 5 -> 3 + 10 + 25 = 38.
        assert_eq!(f.eval_poly(&[3, 2, 1], 5), 38);
        assert_eq!(f.eval_poly(&[], 5), 0);
        assert_eq!(f.eval_poly(&[7], 5), 7);
    }

    #[test]
    fn display() {
        assert_eq!(PrimeField::new(13).to_string(), "F_13");
    }
}
