//! Signed power-sum sketches for edge-incidence summaries.
//!
//! A [`SignedPowerSumSketch`] with capacity `k` summarises a *signed* set —
//! a function `c : {0, …, u-1} → {−1, 0, +1}` with at most `k` nonzero
//! entries — by the `2k` power sums `p_i = Σ_x c(x)·(x+1)^i (mod p)`. It is
//! the ingredient that turns Borůvka contraction into a one-broadcast
//! protocol: node `v` sketches its incident edges, counting edge `{v, u}`
//! with sign `+1` when `v < u` and `−1` when `v > u`. Summing the sketches
//! of all member vertices of a component then cancels every internal edge
//! (its two endpoints contribute opposite signs) and leaves exactly the
//! *cut* edges, each with multiplicity `±1` — the AGM graph-sketching
//! identity, here in deterministic exact form.
//!
//! Decoding no longer gets a support size for free (the signed count can be
//! zero for a nonempty set), so it runs Berlekamp–Massey on the `2k` sums
//! to find the minimal linear recurrence, reads the support off the roots
//! of its characteristic polynomial, and solves the transposed Vandermonde
//! system for the signs. A final re-sketch verification rejects every
//! inconsistent input, exactly as in [`PowerSumSketch::decode`].
//!
//! Because the power-sum map is linear, merging two disjoint summaries,
//! peeling a recovered part, and the incidence-cancellation above are all
//! pointwise field operations ([`SignedPowerSumSketch::merge`] /
//! [`SignedPowerSumSketch::subtract`]).
//!
//! [`PowerSumSketch::decode`]: crate::sketch::PowerSumSketch::decode

use crate::field::PrimeField;

/// A linear sketch of a signed set over `{0, …, universe-1}` (multiplicities
/// in `{−1, 0, +1}`) that can be decoded exactly while at most `capacity`
/// entries are nonzero.
///
/// # Examples
///
/// ```
/// use clique_sketch::signed::SignedPowerSumSketch;
///
/// let mut sketch = SignedPowerSumSketch::new(100, 3);
/// sketch.add(7);
/// sketch.add(42);
/// sketch.remove(13); // multiplicity −1, not an inverse of add
/// assert_eq!(sketch.decode(), Some(vec![(7, 1), (13, -1), (42, 1)]));
///
/// // Oppositely signed copies cancel: the heart of cut sketching.
/// let mut mirror = SignedPowerSumSketch::new(100, 3);
/// mirror.remove(7);
/// sketch.merge(&mirror);
/// assert_eq!(sketch.decode(), Some(vec![(13, -1), (42, 1)]));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SignedPowerSumSketch {
    field: PrimeField,
    universe: u64,
    capacity: usize,
    /// `sums[i]` is the `(i+1)`-st signed power sum; `2 * capacity` of them,
    /// so Berlekamp–Massey can pin recurrences of order up to `capacity`.
    sums: Vec<u64>,
}

impl SignedPowerSumSketch {
    /// Creates an all-zero sketch for signed sets over `{0, …, universe-1}`
    /// with at most `capacity` nonzero multiplicities.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `universe == 0`.
    pub fn new(universe: u64, capacity: usize) -> Self {
        assert!(universe > 0, "universe must be non-empty");
        assert!(capacity > 0, "capacity must be positive");
        let field = PrimeField::for_universe(universe + 1, capacity as u64);
        Self {
            field,
            universe,
            capacity,
            sums: vec![0; 2 * capacity],
        }
    }

    /// The sketch capacity `k` (maximum decodable support size).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The universe size.
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// The underlying field.
    pub fn field(&self) -> PrimeField {
        self.field
    }

    /// Returns `true` if the sketch is identically zero. For honestly
    /// signed inputs (all multiplicities in `{−1, 0, +1}`) with support at
    /// most `2 · capacity` this happens *only* for the empty signed set:
    /// the `2k` power sums of ≤ 2k distinct nonzero field elements form a
    /// full-rank Vandermonde system, which has no nonzero kernel.
    pub fn is_zero(&self) -> bool {
        self.sums.iter().all(|&s| s == 0)
    }

    /// Adds element `x` with multiplicity `+1`.
    ///
    /// # Panics
    ///
    /// Panics if `x >= universe`.
    pub fn add(&mut self, x: u64) {
        self.update(x, true);
    }

    /// Adds element `x` with multiplicity `−1`.
    ///
    /// # Panics
    ///
    /// Panics if `x >= universe`.
    pub fn remove(&mut self, x: u64) {
        self.update(x, false);
    }

    fn update(&mut self, x: u64, positive: bool) {
        assert!(
            x < self.universe,
            "element {x} outside universe {}",
            self.universe
        );
        let shifted = self.field.reduce(x + 1);
        let mut power = 1u64;
        for sum in &mut self.sums {
            power = self.field.mul(power, shifted);
            *sum = if positive {
                self.field.add(*sum, power)
            } else {
                self.field.sub(*sum, power)
            };
        }
    }

    /// Pointwise sum `self + other`: the sketch of the multiplicity-wise
    /// sum of the two signed sets (linearity).
    ///
    /// # Panics
    ///
    /// Panics if the sketches have different parameters.
    pub fn merge(&mut self, other: &SignedPowerSumSketch) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        assert_eq!(self.universe, other.universe, "universe mismatch");
        for (s, o) in self.sums.iter_mut().zip(&other.sums) {
            *s = self.field.add(*s, *o);
        }
    }

    /// Pointwise difference `self − other`.
    ///
    /// # Panics
    ///
    /// Panics if the sketches have different parameters.
    pub fn subtract(&mut self, other: &SignedPowerSumSketch) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        assert_eq!(self.universe, other.universe, "universe mismatch");
        for (s, o) in self.sums.iter_mut().zip(&other.sums) {
            *s = self.field.sub(*s, *o);
        }
    }

    /// The raw power sums (for serialisation): `2 * capacity` field
    /// elements.
    pub fn power_sums(&self) -> &[u64] {
        &self.sums
    }

    /// Rebuilds a sketch from raw parts (as received over the network).
    ///
    /// # Panics
    ///
    /// Panics if `sums.len() != 2 * capacity` or the parameters are invalid.
    pub fn from_parts(universe: u64, capacity: usize, sums: Vec<u64>) -> Self {
        assert_eq!(
            sums.len(),
            2 * capacity,
            "expected {} power sums",
            2 * capacity
        );
        let mut sketch = Self::new(universe, capacity);
        sketch.sums = sums.into_iter().map(|s| sketch.field.reduce(s)).collect();
        sketch
    }

    /// Decodes the signed set by scanning the whole universe for roots.
    ///
    /// Returns the `(element, sign)` pairs sorted by element, or `None`
    /// when the sketch does not correspond to a signed set of at most
    /// `capacity` elements with multiplicities `±1`.
    pub fn decode(&self) -> Option<Vec<(u64, i8)>> {
        self.decode_scan(None)
    }

    /// Decodes the signed set, restricting the root scan to `candidates`.
    ///
    /// Equivalent to [`Self::decode`] whenever the true support is a subset
    /// of `candidates` (the verification step rejects any decode that does
    /// not reproduce the sums, so a miss can only turn into `None`, never
    /// into a wrong answer). Protocols use this to scan only the
    /// polynomially many keys that can actually occur — e.g. the edge keys
    /// of a graph — instead of the full universe; in the congested-clique
    /// model the two are interchangeable, since local computation is free.
    ///
    /// `candidates` must be strictly increasing.
    pub fn decode_among(&self, candidates: &[u64]) -> Option<Vec<(u64, i8)>> {
        debug_assert!(
            candidates.windows(2).all(|w| w[0] < w[1]),
            "candidates must be strictly increasing"
        );
        self.decode_scan(Some(candidates))
    }

    fn decode_scan(&self, candidates: Option<&[u64]>) -> Option<Vec<(u64, i8)>> {
        if self.is_zero() {
            return Some(Vec::new());
        }
        let f = self.field;

        // Minimal linear recurrence of the sum sequence. A signed set
        // {(x_i, c_i)} has p_j = Σ_i (c_i r_i) r_i^(j-1) with r_i = x_i + 1
        // distinct and nonzero and c_i r_i ≠ 0, so the minimal recurrence
        // has order exactly the support size and characteristic polynomial
        // Π_i (X − r_i) — recoverable from 2·capacity sums while the
        // support is at most `capacity`.
        let connection = berlekamp_massey(f, &self.sums);
        let t = connection.len() - 1;
        if t == 0 || t > self.capacity {
            return None;
        }

        // Characteristic polynomial X^t · C(1/X), constant term first.
        let char_poly: Vec<u64> = connection.iter().rev().copied().collect();

        // Roots among the (shifted) candidate elements.
        let mut support = Vec::with_capacity(t);
        let mut scan = |x: u64| -> bool {
            if f.eval_poly(&char_poly, f.reduce(x + 1)) == 0 {
                support.push(x);
                return support.len() > t;
            }
            false
        };
        match candidates {
            Some(list) => {
                for &x in list {
                    debug_assert!(x < self.universe, "candidate outside universe");
                    if scan(x) {
                        break;
                    }
                }
            }
            None => {
                for x in 0..self.universe {
                    if scan(x) {
                        break;
                    }
                }
            }
        }
        if support.len() != t {
            return None;
        }

        // Solve the transposed Vandermonde system
        // Σ_i c_i r_i^j = p_j (j = 1, …, t) for the multiplicities c_i.
        let roots: Vec<u64> = support.iter().map(|&x| f.reduce(x + 1)).collect();
        let mut matrix = vec![vec![0u64; t + 1]; t];
        for (j, row) in matrix.iter_mut().enumerate() {
            for (i, &r) in roots.iter().enumerate() {
                row[i] = f.pow(r, (j + 1) as u64);
            }
            row[t] = self.sums[j];
        }
        let coefficients = solve_linear_system(f, &mut matrix)?;

        // Multiplicities must be ±1, and the full 2k sums must reproduce.
        let mut signed = Vec::with_capacity(t);
        let mut check = SignedPowerSumSketch::new(self.universe, self.capacity);
        for (&x, &c) in support.iter().zip(&coefficients) {
            if c == 1 {
                check.add(x);
                signed.push((x, 1i8));
            } else if c == f.modulus() - 1 {
                check.remove(x);
                signed.push((x, -1i8));
            } else {
                return None;
            }
        }
        if check.sums == self.sums {
            Some(signed)
        } else {
            None
        }
    }

    /// Number of bits needed to transmit this sketch: `2 · capacity` field
    /// elements.
    pub fn encoded_bits(&self) -> usize {
        signed_sketch_bits(self.universe, self.capacity)
    }
}

/// Berlekamp–Massey over `F_p`: the connection polynomial
/// `C(X) = 1 + c_1 X + … + c_L X^L` of the minimal recurrence
/// `Σ_{i=0}^{L} c_i · s_{n-i} = 0` (with `c_0 = 1`) satisfied by the whole
/// sequence. Returns the `L + 1` coefficients `[1, c_1, …, c_L]`.
fn berlekamp_massey(f: PrimeField, sequence: &[u64]) -> Vec<u64> {
    let n = sequence.len();
    let mut current = vec![0u64; n + 1];
    let mut previous = vec![0u64; n + 1];
    current[0] = 1;
    previous[0] = 1;
    let mut order = 0usize; // L, the current recurrence order
    let mut gap = 1usize; // steps since `previous` last failed
    let mut last_discrepancy = 1u64;
    for i in 0..n {
        let mut discrepancy = sequence[i];
        for j in 1..=order {
            discrepancy = f.add(discrepancy, f.mul(current[j], sequence[i - j]));
        }
        if discrepancy == 0 {
            gap += 1;
            continue;
        }
        let scale = f.mul(discrepancy, f.inv(last_discrepancy));
        if 2 * order <= i {
            let stale = current.clone();
            for j in 0..=(n - gap) {
                current[j + gap] = f.sub(current[j + gap], f.mul(scale, previous[j]));
            }
            order = i + 1 - order;
            previous = stale;
            last_discrepancy = discrepancy;
            gap = 1;
        } else {
            for j in 0..=(n - gap) {
                current[j + gap] = f.sub(current[j + gap], f.mul(scale, previous[j]));
            }
            gap += 1;
        }
    }
    current.truncate(order + 1);
    current
}

/// Gaussian elimination over `F_p` on an augmented `t × (t + 1)` system;
/// returns the solution vector, or `None` if the matrix is singular.
fn solve_linear_system(f: PrimeField, matrix: &mut [Vec<u64>]) -> Option<Vec<u64>> {
    let t = matrix.len();
    for col in 0..t {
        let pivot = (col..t).find(|&r| matrix[r][col] != 0)?;
        matrix.swap(col, pivot);
        let inv = f.inv(matrix[col][col]);
        for value in &mut matrix[col][col..=t] {
            *value = f.mul(*value, inv);
        }
        let pivot_row = matrix[col].clone();
        for (row, entries) in matrix.iter_mut().enumerate() {
            if row != col && entries[col] != 0 {
                let factor = entries[col];
                for (value, &p) in entries[col..=t].iter_mut().zip(&pivot_row[col..=t]) {
                    *value = f.sub(*value, f.mul(factor, p));
                }
            }
        }
    }
    Some((0..t).map(|i| matrix[i][t]).collect())
}

/// Number of bits needed to transmit a signed sketch over
/// `{0,…,universe-1}` with the given capacity: `2 · capacity` field
/// elements of `O(log universe)` bits each — no count word, since the
/// signed cardinality carries no support information.
pub fn signed_sketch_bits(universe: u64, capacity: usize) -> usize {
    let field = PrimeField::for_universe(universe + 1, capacity as u64);
    2 * capacity * field.element_bits()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::seq::SliceRandom;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn empty_sketch_decodes_to_empty_set() {
        let sketch = SignedPowerSumSketch::new(64, 4);
        assert!(sketch.is_zero());
        assert_eq!(sketch.decode(), Some(vec![]));
    }

    #[test]
    fn signed_sets_round_trip() {
        for set in [
            vec![(0u64, 1i8)],
            vec![(0, -1)],
            vec![(3, 1), (17, -1)],
            vec![(5, -1), (9, -1), (49, -1)],
            vec![(10, 1), (20, -1), (30, 1), (40, -1)],
        ] {
            let mut sketch = SignedPowerSumSketch::new(50, 4);
            for &(x, sign) in &set {
                if sign > 0 {
                    sketch.add(x);
                } else {
                    sketch.remove(x);
                }
            }
            assert_eq!(sketch.decode(), Some(set.clone()), "failed for {set:?}");
        }
    }

    #[test]
    fn cancellation_of_opposite_signs() {
        let mut a = SignedPowerSumSketch::new(40, 3);
        a.add(7);
        a.add(12);
        let mut b = SignedPowerSumSketch::new(40, 3);
        b.remove(7);
        b.add(31);
        a.merge(&b);
        assert_eq!(a.decode(), Some(vec![(12, 1), (31, 1)]));
        let mut c = SignedPowerSumSketch::new(40, 3);
        c.add(12);
        c.add(31);
        a.subtract(&c);
        assert!(a.is_zero());
    }

    #[test]
    fn over_capacity_fails_cleanly_and_peels_back() {
        let mut sketch = SignedPowerSumSketch::new(30, 3);
        for x in [1u64, 2, 3, 4] {
            sketch.add(x);
        }
        assert_eq!(sketch.decode(), None);
        let mut peel = SignedPowerSumSketch::new(30, 3);
        peel.add(4);
        sketch.subtract(&peel);
        assert_eq!(sketch.decode(), Some(vec![(1, 1), (2, 1), (3, 1)]));
    }

    #[test]
    fn non_unit_multiplicities_are_rejected() {
        let mut sketch = SignedPowerSumSketch::new(30, 3);
        sketch.add(5);
        sketch.add(5); // multiplicity 2
        assert_eq!(sketch.decode(), None);
        sketch.remove(5);
        assert_eq!(sketch.decode(), Some(vec![(5, 1)]));
    }

    #[test]
    fn decode_among_matches_full_scan_on_supersets() {
        let mut sketch = SignedPowerSumSketch::new(200, 4);
        for x in [11u64, 60, 199] {
            sketch.add(x);
        }
        sketch.remove(42);
        let full = sketch.decode().unwrap();
        let candidates: Vec<u64> = vec![3, 11, 42, 60, 100, 150, 199];
        assert_eq!(sketch.decode_among(&candidates), Some(full));
        // A candidate list missing part of the support fails verification
        // instead of mis-decoding.
        assert_eq!(sketch.decode_among(&[11, 42, 60]), None);
    }

    #[test]
    fn random_signed_sets_round_trip() {
        let mut rng = ChaCha8Rng::seed_from_u64(0x516);
        for trial in 0..40 {
            let universe = 300u64;
            let capacity = 1 + (trial % 7);
            let size = trial % (capacity + 1);
            let mut all: Vec<u64> = (0..universe).collect();
            all.shuffle(&mut rng);
            let mut set: Vec<(u64, i8)> = all
                .into_iter()
                .take(size)
                .map(|x| (x, if rng.gen_bool(0.5) { 1i8 } else { -1 }))
                .collect();
            let mut sketch = SignedPowerSumSketch::new(universe, capacity);
            for &(x, sign) in &set {
                if sign > 0 {
                    sketch.add(x);
                } else {
                    sketch.remove(x);
                }
            }
            set.sort_unstable();
            assert_eq!(
                sketch.decode(),
                Some(set),
                "capacity {capacity} size {size}"
            );
        }
    }

    #[test]
    fn from_parts_round_trip() {
        let mut sketch = SignedPowerSumSketch::new(100, 4);
        sketch.add(7);
        sketch.remove(77);
        let rebuilt = SignedPowerSumSketch::from_parts(100, 4, sketch.power_sums().to_vec());
        assert_eq!(rebuilt, sketch);
        assert_eq!(rebuilt.decode(), Some(vec![(7, 1), (77, -1)]));
    }

    #[test]
    fn encoded_bits_scale_as_k_log_n() {
        assert!(signed_sketch_bits(100, 8) > 3 * signed_sketch_bits(100, 2) / 2);
        // 2k field elements of ⌈log₂ p⌉ ≈ 7 bits each.
        assert!(signed_sketch_bits(100, 8) <= 2 * 8 * 8);
        assert_eq!(
            SignedPowerSumSketch::new(100, 8).encoded_bits(),
            signed_sketch_bits(100, 8)
        );
    }

    #[test]
    fn incidence_sum_yields_cut_edges() {
        // The motivating identity on a 4-cycle 0-1-2-3-0 with edge keys
        // u·4+v (u < v): summing the incidence sketches of {0, 1} cancels
        // the internal edge {0,1} and keeps the cut edges {1,2}, {0,3}.
        let n = 4u64;
        let edges = [(0u64, 1u64), (1, 2), (2, 3), (0, 3)];
        let key = |u: u64, v: u64| u * n + v;
        let mut sketches: Vec<SignedPowerSumSketch> = (0..n)
            .map(|_| SignedPowerSumSketch::new(n * n, 3))
            .collect();
        for &(u, v) in &edges {
            sketches[u as usize].add(key(u, v));
            sketches[v as usize].remove(key(u, v));
        }
        let mut component = sketches[0].clone();
        component.merge(&sketches[1]);
        let decoded = component.decode().unwrap();
        let support: Vec<u64> = decoded.iter().map(|&(x, _)| x).collect();
        assert_eq!(support, vec![key(0, 3), key(1, 2)]);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn out_of_universe_element_panics() {
        let mut sketch = SignedPowerSumSketch::new(10, 2);
        sketch.add(10);
    }
}
