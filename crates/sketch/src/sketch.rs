//! Power-sum set sketches with exact decoding.
//!
//! A [`PowerSumSketch`] with capacity `k` over `F_p` summarises a set
//! `S ⊆ {0, …, u-1}` by its size and the power sums
//! `p_i = Σ_{x ∈ S} (x+1)^i (mod p)` for `i = 1, …, k` (elements are shifted
//! by one so that the element `0` is visible in the sums). Any set of size at
//! most `k` can be recovered exactly: Newton's identities convert the power
//! sums into the elementary symmetric polynomials, these are the coefficients
//! of the locator polynomial `Π_{x ∈ S}(X − (x+1))`, and the roots are found
//! by evaluating the polynomial over the (known, polynomially small)
//! universe.
//!
//! Sketches are linear: adding or removing an element updates every power sum
//! in `O(k)` time, which is what allows the graph-reconstruction decoder to
//! "peel" recovered edges out of the remaining sketches.

use crate::field::PrimeField;

/// A linear sketch of a subset of `{0, …, universe-1}` that can be decoded
/// exactly while the set has at most `capacity` elements.
///
/// # Examples
///
/// ```
/// use clique_sketch::sketch::PowerSumSketch;
///
/// let mut sketch = PowerSumSketch::new(100, 4);
/// for x in [3u64, 17, 42] {
///     sketch.add(x);
/// }
/// assert_eq!(sketch.decode(), Some(vec![3, 17, 42]));
///
/// sketch.remove(17);
/// assert_eq!(sketch.decode(), Some(vec![3, 42]));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PowerSumSketch {
    field: PrimeField,
    universe: u64,
    capacity: usize,
    /// Signed cardinality of the sketched (multi)set; removals below zero are
    /// tracked so that `subtract` is a total operation.
    count: i64,
    /// `sums[i]` is the `(i+1)`-st power sum.
    sums: Vec<u64>,
}

impl PowerSumSketch {
    /// Creates an empty sketch for subsets of `{0, …, universe-1}` of size at
    /// most `capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `universe == 0`.
    pub fn new(universe: u64, capacity: usize) -> Self {
        assert!(universe > 0, "universe must be non-empty");
        assert!(capacity > 0, "capacity must be positive");
        let field = PrimeField::for_universe(universe + 1, capacity as u64);
        Self {
            field,
            universe,
            capacity,
            count: 0,
            sums: vec![0; capacity],
        }
    }

    /// The sketch capacity `k`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The universe size.
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// The underlying field.
    pub fn field(&self) -> PrimeField {
        self.field
    }

    /// Net number of elements currently sketched (insertions minus removals).
    pub fn count(&self) -> i64 {
        self.count
    }

    /// Returns `true` if the sketch is identically zero (empty set).
    pub fn is_zero(&self) -> bool {
        self.count == 0 && self.sums.iter().all(|&s| s == 0)
    }

    /// Adds element `x` to the sketch.
    ///
    /// # Panics
    ///
    /// Panics if `x >= universe`.
    pub fn add(&mut self, x: u64) {
        self.update(x, true);
    }

    /// Removes element `x` from the sketch (the inverse of [`Self::add`]).
    ///
    /// # Panics
    ///
    /// Panics if `x >= universe`.
    pub fn remove(&mut self, x: u64) {
        self.update(x, false);
    }

    fn update(&mut self, x: u64, insert: bool) {
        assert!(
            x < self.universe,
            "element {x} outside universe {}",
            self.universe
        );
        let shifted = self.field.reduce(x + 1);
        let mut power = 1u64;
        for sum in &mut self.sums {
            power = self.field.mul(power, shifted);
            *sum = if insert {
                self.field.add(*sum, power)
            } else {
                self.field.sub(*sum, power)
            };
        }
        self.count += if insert { 1 } else { -1 };
    }

    /// The raw power sums (for serialisation).
    pub fn power_sums(&self) -> &[u64] {
        &self.sums
    }

    /// Rebuilds a sketch from raw parts (as received over the network).
    ///
    /// # Panics
    ///
    /// Panics if `sums.len() != capacity` or the parameters are invalid.
    pub fn from_parts(universe: u64, capacity: usize, count: i64, sums: Vec<u64>) -> Self {
        assert_eq!(sums.len(), capacity, "expected {capacity} power sums");
        let mut sketch = Self::new(universe, capacity);
        sketch.count = count;
        sketch.sums = sums.into_iter().map(|s| sketch.field.reduce(s)).collect();
        sketch
    }

    /// Pointwise difference `self − other`, used by the peeling decoder to
    /// remove already-recovered edges.
    ///
    /// # Panics
    ///
    /// Panics if the sketches have different parameters.
    pub fn subtract(&mut self, other: &PowerSumSketch) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        assert_eq!(self.universe, other.universe, "universe mismatch");
        for (s, o) in self.sums.iter_mut().zip(&other.sums) {
            *s = self.field.sub(*s, *o);
        }
        self.count -= other.count;
    }

    /// Decodes the sketched set, provided it has between 0 and `capacity`
    /// elements.
    ///
    /// Returns the sorted elements, or `None` if decoding fails — which
    /// happens exactly when the sketch does not correspond to a set of at
    /// most `capacity` distinct universe elements (e.g. the true set was
    /// larger than the capacity, or removals made it inconsistent).
    pub fn decode(&self) -> Option<Vec<u64>> {
        if self.count < 0 || self.count as usize > self.capacity {
            return None;
        }
        let d = self.count as usize;
        if d == 0 {
            return if self.is_zero() {
                Some(Vec::new())
            } else {
                None
            };
        }
        let f = self.field;

        // Newton's identities: i·e_i = Σ_{j=1..i} (−1)^{j−1} e_{i−j} p_j,
        // with e_0 = 1.
        let mut elementary = vec![0u64; d + 1];
        elementary[0] = 1;
        for i in 1..=d {
            let mut acc = 0u64;
            for j in 1..=i {
                let term = f.mul(elementary[i - j], self.sums[j - 1]);
                if j % 2 == 1 {
                    acc = f.add(acc, term);
                } else {
                    acc = f.sub(acc, term);
                }
            }
            elementary[i] = f.mul(acc, f.inv(i as u64));
        }

        // Locator polynomial Π (X − r) = Σ_{i=0..d} (−1)^i e_i X^{d−i};
        // store coefficients constant-term-first for Horner evaluation.
        let mut coeffs = vec![0u64; d + 1];
        for (i, &e) in elementary.iter().enumerate() {
            let signed = if i % 2 == 0 { e } else { f.neg(e) };
            coeffs[d - i] = signed;
        }

        // Find roots among the (shifted) universe elements.
        let mut roots = Vec::with_capacity(d);
        for x in 0..self.universe {
            if f.eval_poly(&coeffs, f.reduce(x + 1)) == 0 {
                roots.push(x);
                if roots.len() > d {
                    break;
                }
            }
        }
        if roots.len() != d {
            return None;
        }
        // Verify: re-sketch the recovered set and compare, to reject
        // accidental factorisations that do not match the original sums.
        let mut check = PowerSumSketch::new(self.universe, self.capacity);
        for &r in &roots {
            check.add(r);
        }
        if check.sums == self.sums {
            Some(roots)
        } else {
            None
        }
    }

    /// Number of bits needed to transmit this sketch: the count plus
    /// `capacity` field elements.
    pub fn encoded_bits(&self) -> usize {
        sketch_bits(self.universe, self.capacity)
    }
}

/// Number of bits needed to transmit a sketch over `{0,…,universe-1}` with
/// the given capacity: a set size in `0..=universe` plus `capacity` field
/// elements. This is the `O(k log n)` message of Becker et al.
pub fn sketch_bits(universe: u64, capacity: usize) -> usize {
    let field = PrimeField::for_universe(universe + 1, capacity as u64);
    let count_bits = clique_sim::bits::bits_for_universe(universe + 1);
    count_bits + capacity * field.element_bits()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn empty_sketch_decodes_to_empty_set() {
        let sketch = PowerSumSketch::new(50, 3);
        assert!(sketch.is_zero());
        assert_eq!(sketch.decode(), Some(vec![]));
        assert_eq!(sketch.count(), 0);
    }

    #[test]
    fn add_and_decode_small_sets() {
        for set in [vec![0u64], vec![0, 1], vec![5, 9, 49], vec![10, 20, 30, 40]] {
            let mut sketch = PowerSumSketch::new(50, 4);
            for &x in &set {
                sketch.add(x);
            }
            let mut expected = set.clone();
            expected.sort_unstable();
            assert_eq!(sketch.decode(), Some(expected), "failed for {set:?}");
        }
    }

    #[test]
    fn element_zero_is_distinguishable() {
        let mut with_zero = PowerSumSketch::new(10, 2);
        with_zero.add(0);
        let empty = PowerSumSketch::new(10, 2);
        assert_ne!(with_zero, empty);
        assert_eq!(with_zero.decode(), Some(vec![0]));
    }

    #[test]
    fn over_capacity_fails_cleanly() {
        let mut sketch = PowerSumSketch::new(30, 3);
        for x in [1u64, 2, 3, 4] {
            sketch.add(x);
        }
        assert_eq!(sketch.decode(), None);
        // Removing one element brings it back within capacity.
        sketch.remove(4);
        assert_eq!(sketch.decode(), Some(vec![1, 2, 3]));
    }

    #[test]
    fn add_remove_round_trip_is_identity() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut sketch = PowerSumSketch::new(200, 6);
        let mut elements: Vec<u64> = (0..200).collect();
        elements.shuffle(&mut rng);
        let chosen: Vec<u64> = elements.drain(..20).collect();
        for &x in &chosen {
            sketch.add(x);
        }
        for &x in &chosen {
            sketch.remove(x);
        }
        assert!(sketch.is_zero());
        assert_eq!(sketch.decode(), Some(vec![]));
    }

    #[test]
    fn subtract_peels_correctly() {
        let mut a = PowerSumSketch::new(64, 5);
        for x in [1u64, 2, 3, 10, 20] {
            a.add(x);
        }
        let mut b = PowerSumSketch::new(64, 5);
        for x in [2u64, 20] {
            b.add(x);
        }
        a.subtract(&b);
        assert_eq!(a.decode(), Some(vec![1, 3, 10]));
    }

    #[test]
    fn from_parts_round_trip() {
        let mut sketch = PowerSumSketch::new(100, 4);
        for x in [7u64, 77] {
            sketch.add(x);
        }
        let rebuilt =
            PowerSumSketch::from_parts(100, 4, sketch.count(), sketch.power_sums().to_vec());
        assert_eq!(rebuilt.decode(), Some(vec![7, 77]));
    }

    #[test]
    fn random_sets_round_trip() {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        for trial in 0..30 {
            let universe = 150u64;
            let capacity = 1 + (trial % 8);
            let size = trial % (capacity + 1);
            let mut all: Vec<u64> = (0..universe).collect();
            all.shuffle(&mut rng);
            let mut set: Vec<u64> = all.into_iter().take(size).collect();
            let mut sketch = PowerSumSketch::new(universe, capacity);
            for &x in &set {
                sketch.add(x);
            }
            set.sort_unstable();
            assert_eq!(sketch.decode(), Some(set));
        }
    }

    #[test]
    fn encoded_bits_scale_as_k_log_n() {
        let small = sketch_bits(100, 2);
        let large = sketch_bits(100, 8);
        assert!(large > 3 * small / 2);
        // O(k log n): 8 elements of ~7 bits plus a 7-bit count.
        assert!(sketch_bits(100, 8) <= 8 * 8 + 8);
        assert_eq!(
            PowerSumSketch::new(100, 8).encoded_bits(),
            sketch_bits(100, 8)
        );
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn out_of_universe_element_panics() {
        let mut sketch = PowerSumSketch::new(10, 2);
        sketch.add(10);
    }
}
