//! Criterion benchmark for experiment E6_LOWER_BOUND_CLIQUES: wall-clock cost of the
//! `e6_lower_bound_cliques` sweep at quick scale. The full sweep (and the table the paper
//! claim is checked against) is produced by the `experiments` binary.

use std::time::Duration;

use clique_bench::experiments::e6_lower_bound_cliques;
use clique_bench::Scale;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_lower_bound_cliques");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("quick sweep", |b| {
        b.iter(|| e6_lower_bound_cliques(Scale::Quick))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
