//! Criterion benchmark for experiment E13: wall-clock cost of the
//! `e13_semiring_matmul` sweep at quick scale (distributed semiring matmul,
//! triangle counting and APSP). The full sweep (and the table the scaling
//! claim is checked against) is produced by the `experiments` binary.

use std::time::Duration;

use clique_bench::experiments::e13_semiring_matmul;
use clique_bench::Scale;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_semiring_matmul");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("quick sweep", |b| {
        b.iter(|| e13_semiring_matmul(Scale::Quick))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
