//! Criterion benchmark for experiment E15: wall-clock cost of the
//! `e15_mst_sketches` sweep at quick scale (sketch-Borůvka MST over the
//! weighted family grid). The full sweep (and the constant-phase plateau
//! table) is produced by the `experiments` binary.

use std::time::Duration;

use clique_bench::experiments::e15_mst_sketches;
use clique_bench::Scale;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e15_mst_sketches");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("quick sweep", |b| b.iter(|| e15_mst_sketches(Scale::Quick)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
