//! Lightweight experiment tables rendered as Markdown (and JSON).

/// One experiment's result table.
#[derive(Clone, Debug)]
pub struct ExperimentTable {
    /// Experiment identifier (e.g. `"E4"`).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// The paper claim being reproduced.
    pub claim: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows (stringified cells).
    pub rows: Vec<Vec<String>>,
}

impl ExperimentTable {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, claim: &str, headers: &[&str]) -> Self {
        Self {
            id: id.to_owned(),
            title: title.to_owned(),
            claim: claim.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// Renders the table as a JSON object (hand-rolled; the build
    /// environment has no serde).
    pub fn to_json(&self) -> String {
        let headers: Vec<String> = self.headers.iter().map(|h| json_string(h)).collect();
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|row| {
                let cells: Vec<String> = row.iter().map(|c| json_string(c)).collect();
                format!("[{}]", cells.join(", "))
            })
            .collect();
        format!(
            concat!(
                "{{\n  \"id\": {},\n  \"title\": {},\n  \"claim\": {},\n",
                "  \"headers\": [{}],\n  \"rows\": [{}]\n}}"
            ),
            json_string(&self.id),
            json_string(&self.title),
            json_string(&self.claim),
            headers.join(", "),
            rows.join(", ")
        )
    }

    /// Renders the table as GitHub-flavoured Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {} — {}\n\n", self.id, self.title));
        out.push_str(&format!("*Claim:* {}\n\n", self.claim));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}|\n",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out.push('\n');
        out
    }
}

/// Escapes a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float compactly.
pub fn fmt_f64(x: f64) -> String {
    if x == 0.0 {
        "0".to_owned()
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering() {
        let mut t = ExperimentTable::new("E0", "demo", "demo claim", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### E0 — demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = ExperimentTable::new("E0", "demo", "demo claim", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(1234.4), "1234");
        assert_eq!(fmt_f64(12.34), "12.3");
        assert_eq!(fmt_f64(0.1234), "0.123");
    }
}
