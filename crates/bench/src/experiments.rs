//! The experiment suite: one function per claim of the paper (see DESIGN.md,
//! per-experiment index). Each returns an [`ExperimentTable`] with the
//! measured quantities next to what the corresponding theorem predicts.

use std::time::Instant;

use clique_core::algebraic::{
    compute_apsp, count_triangles, semiring_matmul, sparse_matmul, ApspProtocol, FastMatMul,
    Semiring, SemiringMatMul, SemiringMatrix, TriangleCount,
};
use clique_core::circuits::builders;
use clique_core::circuits::Circuit;
use clique_core::comm::counting;
use clique_core::comm::disjointness::DisjointnessBound;
use clique_core::graphs::behrend::behrend_set;
use clique_core::graphs::degeneracy::degeneracy;
use clique_core::graphs::iso::minimum_spanning_forest;
use clique_core::graphs::sampling::SampledSubgraphs;
use clique_core::graphs::weighted::{self, WeightedGraph};
use clique_core::graphs::{extremal, generators, Graph, Pattern};
use clique_core::lower_bounds::{
    bipartite_detection_lower_bound, clique_detection_lower_bound, cycle_detection_lower_bound,
    triangle_nof_lower_bound, DetectorKind,
};
use clique_core::routing::{
    BalancedRouter, DirectRouter, RouteProtocol, Router, RoutingDemand, ValiantRouter,
};
use clique_core::sim::linalg::{BitMatrix, IntMatrix};
use clique_core::sim::par;
use clique_core::sim::prelude::*;
use clique_core::sim::transport::INJECTABLE_FAULTS;
use clique_core::sketch::reconstruct::message_bits;
use clique_core::subgraph::{detect_subgraph_turan, SketchReconstruction};
use clique_core::triangle::{
    detect_triangle_dlp, detect_triangle_trivial, detect_triangle_via_matmul, MatMulStrategy,
};
use clique_core::{compute_msf, detect_subgraph_adaptive, simulate_circuit, InputPartition};
use clique_serve::{JobSpec, Server, ServerConfig};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::table::{fmt_f64, ExperimentTable};

/// How large a parameter sweep to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Small sizes, suitable for Criterion benchmarks and CI.
    Quick,
    /// The sizes reported in EXPERIMENTS.md.
    Full,
}

impl Scale {
    fn pick<T: Copy>(&self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

fn log2_bandwidth(n: usize) -> usize {
    ((n as f64).log2().ceil() as usize).max(1)
}

/// E1 — Theorem 2: bounded-depth circuits of separable gates are simulated
/// in `O(depth)` rounds.
pub fn e1_circuit_simulation(scale: Scale) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E1",
        "circuit-to-clique simulation (Theorem 2)",
        "a depth-D circuit with n²·s wires of b_sep-separable gates runs in O(D) rounds of CLIQUE-UCAST(n, O(b_sep+s))",
        &[
            "circuit", "players n", "inputs", "depth D", "wires", "density s", "bandwidth",
            "rounds", "rounds/(D+2)", "max phase rounds", "correct",
        ],
    );
    let sizes: &[usize] = match scale {
        Scale::Quick => &[8],
        Scale::Full => &[8, 16, 24],
    };
    for &n in sizes {
        let m = n * n;
        let circuits: Vec<(&str, Circuit)> = vec![
            ("parity (1 XOR gate)", builders::parity(m)),
            ("parity tree (arity 4)", builders::parity_tree(m, 4)),
            ("majority", builders::majority(m)),
            ("MOD6 of MOD6", builders::mod_of_mods(m, 6, n)),
            (
                "exactly-k threshold",
                builders::exactly_k(m, (m / 3) as u64),
            ),
            ("inner product mod 2", builders::inner_product_mod2(m / 2)),
        ];
        let mut r = rng(100 + n as u64);
        for (name, circuit) in circuits {
            let s = circuit.wire_density(n);
            let bandwidth = (s + log2_bandwidth(n)).max(circuit.max_separability_bits());
            let input: Vec<bool> = (0..circuit.inputs().len())
                .map(|_| r.gen_bool(0.5))
                .collect();
            let expected = circuit.evaluate(&input);
            let sim = simulate_circuit(&circuit, &input, n, bandwidth, InputPartition::RoundRobin)
                .expect("simulation failed");
            let depth = circuit.depth();
            table.push_row(vec![
                name.to_owned(),
                n.to_string(),
                circuit.inputs().len().to_string(),
                depth.to_string(),
                circuit.wire_count().to_string(),
                s.to_string(),
                bandwidth.to_string(),
                sim.rounds().to_string(),
                fmt_f64(sim.rounds() as f64 / (depth as f64 + 2.0)),
                sim.max_phase_rounds().to_string(),
                (sim.outputs == expected).to_string(),
            ]);
        }
    }
    table
}

/// E2 — the routing substrate: balanced demands route in O(1) rounds.
pub fn e2_routing(scale: Scale) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E2",
        "balanced routing substrate (Lenzen [28] stand-in)",
        "balanced demands (≤ n·b bits in/out per node) are delivered in O(1) rounds; direct delivery degrades to Θ(n) on concentrated demands",
        &["n", "demand", "router", "rounds"],
    );
    let sizes: &[usize] = match scale {
        Scale::Quick => &[16],
        Scale::Full => &[16, 32, 64],
    };
    for &n in sizes {
        let b = log2_bandwidth(n);
        let mut demands: Vec<(&str, RoutingDemand)> = Vec::new();
        // Concentrated: node 0 sends n packets of b bits to node 1.
        let mut concentrated = RoutingDemand::new(n);
        for i in 0..n {
            concentrated.send(0, 1, BitString::from_bits(i as u64 % 16, b));
        }
        demands.push(("concentrated 0→1", concentrated));
        // All-to-all: every ordered pair exchanges b bits.
        let mut all_to_all = RoutingDemand::new(n);
        for s in 0..n {
            for t in 0..n {
                if s != t {
                    all_to_all.send(s, t, BitString::from_bits((s + t) as u64 % 16, b));
                }
            }
        }
        demands.push(("all-to-all", all_to_all));
        let runner = Runner::new(
            CliqueConfig::builder()
                .nodes(n)
                .bandwidth(b)
                .unicast()
                .build(),
        );
        for (name, demand) in demands {
            let routers: Vec<(&str, Box<dyn Router>)> = vec![
                ("direct", Box::new(DirectRouter)),
                ("valiant", Box::new(ValiantRouter::new(rng(7)))),
                ("balanced (Lenzen stand-in)", Box::new(BalancedRouter)),
            ];
            for (router_name, router) in routers {
                let outcome = runner
                    .execute(&mut RouteProtocol::new(router, &demand))
                    .expect("routing failed");
                table.push_row(vec![
                    n.to_string(),
                    name.to_owned(),
                    router_name.to_owned(),
                    outcome.rounds().to_string(),
                ]);
            }
        }
    }
    table
}

/// E3 — Section 2.1: triangle detection through matrix-multiplication
/// circuits, against the trivial and DLP baselines.
pub fn e3_triangle_matmul(scale: Scale) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E3",
        "triangle detection via matrix multiplication (Section 2.1)",
        "a size-O(n^{2+s}) F2 matrix-multiplication circuit yields triangle detection whose bandwidth/round product scales with the circuit's wire density; baselines: trivial ⌈n/b⌉ and DLP Õ(n^{1/3}/b)",
        &["n", "graph", "algorithm", "rounds", "total bits", "answer", "ground truth"],
    );
    let sizes: &[usize] = match scale {
        Scale::Quick => &[8],
        Scale::Full => &[8, 12, 16],
    };
    for &n in sizes {
        let b = log2_bandwidth(n);
        let mut r = rng(300 + n as u64);
        let sparse_yes = {
            let host = generators::erdos_renyi(n, 1.5 / n as f64, &mut r);
            generators::plant_copy(&host, &generators::complete(3), &mut r).0
        };
        let no_instance = generators::complete_bipartite(n / 2, n - n / 2);
        for (gname, g) in [
            ("planted triangle", &sparse_yes),
            ("bipartite (no triangle)", &no_instance),
        ] {
            let truth = clique_core::graphs::iso::has_triangle(g);
            let mut runs: Vec<(&str, clique_core::DetectionOutcome)> = vec![
                ("trivial broadcast", detect_triangle_trivial(g, b).unwrap()),
                ("DLP (deterministic)", detect_triangle_dlp(g, b).unwrap()),
                (
                    "matmul (naive, ω=3)",
                    detect_triangle_via_matmul(g, b, MatMulStrategy::Naive, 3, &mut r).unwrap(),
                ),
            ];
            if matches!(scale, Scale::Full) {
                runs.push((
                    "matmul (Strassen, ω≈2.81)",
                    detect_triangle_via_matmul(g, b, MatMulStrategy::Strassen, 3, &mut r).unwrap(),
                ));
            }
            for (alg, outcome) in runs {
                table.push_row(vec![
                    n.to_string(),
                    gname.to_owned(),
                    alg.to_owned(),
                    outcome.rounds().to_string(),
                    outcome.total_bits().to_string(),
                    outcome.contains.to_string(),
                    truth.to_string(),
                ]);
            }
        }
    }
    table
}

/// E4 — Theorem 7: subgraph detection with known Turán numbers.
pub fn e4_subgraph_turan(scale: Scale) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E4",
        "H-subgraph detection with Turán-derived sketches (Theorem 7)",
        "H-detection runs in O(ex(n,H) log n /(n b)) rounds of CLIQUE-BCAST: Õ(1/b) for trees, Õ(√n/b) for C4/K_{2,2}, Õ(n^{1/3}/b) for C6, trivial Õ(n/b) for non-bipartite H",
        &[
            "pattern", "n", "instance", "rounds", "trivial rounds", "predicted O(ex log n/(n b))",
            "answer", "ground truth",
        ],
    );
    let sizes: &[usize] = match scale {
        Scale::Quick => &[64],
        Scale::Full => &[64, 128, 256],
    };
    for &n in sizes {
        let b = log2_bandwidth(n);
        let mut r = rng(400 + n as u64);
        let patterns = [
            Pattern::Path(4),
            Pattern::Star(3),
            Pattern::Cycle(4),
            Pattern::CompleteBipartite(2, 2),
            Pattern::Cycle(6),
            Pattern::Clique(4),
        ];
        for pattern in patterns {
            // K4 at n = 256 needs capacity ≈ n and an expensive decode; skip
            // the largest size for the non-bipartite pattern (its bound is
            // the trivial one anyway).
            if matches!(pattern, Pattern::Clique(4)) && n > 128 {
                continue;
            }
            let h = pattern.graph();
            // A pattern-free instance and a planted instance.
            let free: Graph = match &pattern {
                Pattern::Cycle(4) | Pattern::CompleteBipartite(2, 2) => extremal::dense_c4_free(n),
                Pattern::Clique(4) => generators::turan_graph(n, 3),
                Pattern::Cycle(l) => extremal::dense_cycle_free(n, *l, &mut r),
                _ => Graph::empty(n),
            };
            let planted = {
                let host = generators::erdos_renyi(n, 1.0 / n as f64, &mut r);
                generators::plant_copy(&host, &h, &mut r).0
            };
            for (iname, g) in [("pattern-free", &free), ("planted copy", &planted)] {
                let truth = clique_core::graphs::iso::contains_subgraph(g, &h);
                let outcome = detect_subgraph_turan(g, &pattern, b).unwrap();
                let predicted =
                    pattern.ex_upper_bound(n) * (n as f64).log2() / (n as f64 * b as f64);
                table.push_row(vec![
                    pattern.name(),
                    n.to_string(),
                    iname.to_owned(),
                    outcome.rounds().to_string(),
                    (n as u64).div_ceil(b as u64).to_string(),
                    fmt_f64(predicted),
                    outcome.contains.to_string(),
                    truth.to_string(),
                ]);
            }
        }
    }
    table
}

/// E5 — Theorem 9 / Lemma 8: adaptive detection and degeneracy sampling.
pub fn e5_adaptive(scale: Scale) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E5",
        "adaptive detection without knowing ex(n,H) (Theorem 9, Lemma 8)",
        "sampled levels G_j have degeneracy ≈ 2^{-j}·degeneracy(G); the adaptive algorithm matches Theorem 7 up to an O(log n) factor without knowing ex(n,H)",
        &["what", "n", "pattern/level", "instance", "value", "reference"],
    );
    let n = scale.pick(64, 128);
    let b = log2_bandwidth(n);
    let mut r = rng(500);

    // Lemma 8: degeneracy of the sampled levels of a dense graph.
    let dense = generators::erdos_renyi(n, 0.5, &mut r);
    let k = degeneracy(&dense);
    let samples = SampledSubgraphs::sample(&dense, &mut r);
    for (j, d) in samples.level_degeneracies().iter().enumerate().take(5) {
        table.push_row(vec![
            "Lemma 8 level degeneracy".to_owned(),
            n.to_string(),
            format!("G_{j}"),
            "G(n, 1/2)".to_owned(),
            d.to_string(),
            fmt_f64(k as f64 / f64::powi(2.0, j as i32)),
        ]);
    }

    // Theorem 9: adaptive detection cost vs the known-Turán protocol.
    for pattern in [Pattern::Path(4), Pattern::Cycle(4), Pattern::Clique(3)] {
        let h = pattern.graph();
        let planted = {
            let host = generators::erdos_renyi(n, 0.3, &mut r);
            generators::plant_copy(&host, &h, &mut r).0
        };
        let free: Graph = match &pattern {
            Pattern::Cycle(4) => extremal::dense_c4_free(n),
            Pattern::Clique(3) => generators::complete_bipartite(n / 2, n - n / 2),
            _ => Graph::empty(n),
        };
        for (iname, g) in [("planted/dense", &planted), ("pattern-free", &free)] {
            let truth = clique_core::graphs::iso::contains_subgraph(g, &h);
            let adaptive = detect_subgraph_adaptive(g, &pattern, b, &mut r).unwrap();
            let turan = detect_subgraph_turan(g, &pattern, b).unwrap();
            assert_eq!(adaptive.outcome.contains, truth, "adaptive answer wrong");
            table.push_row(vec![
                "Theorem 9 adaptive rounds".to_owned(),
                n.to_string(),
                pattern.name(),
                iname.to_owned(),
                adaptive.rounds().to_string(),
                format!("Theorem 7 (known ex): {}", turan.rounds()),
            ]);
        }
    }
    table
}

/// E6 — Theorem 15: K_ℓ detection needs Ω(n/b) broadcast rounds.
pub fn e6_lower_bound_cliques(scale: Scale) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E6",
        "K_ℓ-detection lower bound (Theorem 15 via Lemmas 13/14)",
        "the (K_ℓ, K_{N,N}) gadget encodes disjointness on Θ(n²) elements, so K_ℓ-detection needs Ω(n/b) rounds; the trivial upper bound is ⌈n/b⌉",
        &["ℓ", "n", "elements |E_F|", "implied lower bound (rounds)", "measured upper bound (rounds)", "all trials correct"],
    );
    let sizes: &[usize] = match scale {
        Scale::Quick => &[32],
        Scale::Full => &[32, 64, 96],
    };
    let trials = scale.pick(2, 4);
    for &n in sizes {
        let b = log2_bandwidth(n);
        for l in [4usize, 5] {
            let mut r = rng(600 + (n + l) as u64);
            let (lbg, report) = clique_detection_lower_bound(
                l,
                n,
                b,
                DetectorKind::TrivialBroadcast,
                trials,
                &mut r,
            )
            .expect("gadget construction failed");
            table.push_row(vec![
                l.to_string(),
                n.to_string(),
                lbg.elements().to_string(),
                fmt_f64(report.implied_round_lower_bound),
                report.max_rounds.to_string(),
                report.all_correct().to_string(),
            ]);
        }
    }
    table
}

/// E7 — Theorem 19: C_ℓ detection needs Ω(ex(n, C_ℓ)/(n b)) rounds.
pub fn e7_lower_bound_cycles(scale: Scale) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E7",
        "C_ℓ-detection lower bound (Theorem 19 via Lemma 18)",
        "the (C_ℓ, F) gadget with a dense bipartite C_ℓ-free F encodes Θ(ex(N,C_ℓ)) elements; both CLIQUE-BCAST and CONGEST bounds follow (the gadget is O(1)-sparse)",
        &["ℓ", "n", "elements |E_F|", "cut size", "implied BCAST bound", "implied CONGEST bound", "measured upper bound", "all correct"],
    );
    let sizes: &[usize] = match scale {
        Scale::Quick => &[40],
        Scale::Full => &[40, 80, 120],
    };
    let trials = scale.pick(2, 4);
    for &n in sizes {
        let b = log2_bandwidth(n);
        for l in [4usize, 5, 6] {
            let mut r = rng(700 + (n + l) as u64);
            let Ok((lbg, report)) = cycle_detection_lower_bound(
                l,
                n,
                b,
                DetectorKind::TrivialBroadcast,
                trials,
                &mut r,
            ) else {
                continue;
            };
            table.push_row(vec![
                l.to_string(),
                n.to_string(),
                lbg.elements().to_string(),
                lbg.cut_size().to_string(),
                fmt_f64(lbg.implied_bcast_rounds(DisjointnessBound::TwoPartyDeterministic, b)),
                fmt_f64(lbg.implied_congest_rounds(DisjointnessBound::TwoPartyDeterministic, b)),
                report.max_rounds.to_string(),
                report.all_correct().to_string(),
            ]);
        }
    }
    table
}

/// E8 — Theorem 22: K_{ℓ,ℓ} detection needs Ω(√n/b) rounds.
pub fn e8_lower_bound_bipartite(scale: Scale) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E8",
        "K_{ℓ,ℓ}-detection lower bound (Theorem 22 via Lemma 21)",
        "the (K_{ℓ,ℓ}, C4-free F) gadget encodes Θ(ex(N,C4)) = Θ(N^{3/2}) elements, implying Ω(√n/b) rounds",
        &["ℓ", "n", "elements |E_F|", "implied lower bound", "measured upper bound", "all correct"],
    );
    let sizes: &[usize] = match scale {
        Scale::Quick => &[44],
        Scale::Full => &[44, 88, 132],
    };
    let trials = scale.pick(2, 4);
    for &n in sizes {
        let b = log2_bandwidth(n);
        for l in [2usize, 3] {
            let mut r = rng(800 + (n + l) as u64);
            let Ok((lbg, report)) = bipartite_detection_lower_bound(
                l,
                n,
                b,
                DetectorKind::TrivialBroadcast,
                trials,
                &mut r,
            ) else {
                continue;
            };
            table.push_row(vec![
                l.to_string(),
                n.to_string(),
                lbg.elements().to_string(),
                fmt_f64(report.implied_round_lower_bound),
                report.max_rounds.to_string(),
                report.all_correct().to_string(),
            ]);
        }
    }
    table
}

/// E9 — Theorem 24 / Corollary 25: triangle detection vs 3-party NOF
/// disjointness over Ruzsa–Szemerédi graphs.
pub fn e9_triangle_nof(scale: Scale) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E9",
        "triangle-detection lower bound from 3-party NOF disjointness (Theorem 24, Corollary 25)",
        "Ruzsa–Szemerédi graphs give m(n) = n²/e^{O(√log n)} edge-disjoint triangles; an R-round triangle protocol yields an O(R·n·b)-bit NOF protocol, so deterministic detection needs Ω(m(n)/(n·b)) rounds",
        &[
            "RS parameter", "n (players)", "|Behrend set|", "elements m(n)",
            "implied deterministic bound", "implied randomized bound", "trivial upper bound", "reduction correct",
        ],
    );
    let params: &[usize] = match scale {
        Scale::Quick => &[12],
        Scale::Full => &[12, 24, 48, 96],
    };
    for &m in params {
        let b = log2_bandwidth(6 * m);
        let mut r = rng(900 + m as u64);
        // Only run the full reduction (with an actual detection protocol) on
        // the smaller sizes; for larger ones report the structural numbers.
        let trials = if m <= 24 { scale.pick(2, 4) } else { 0 };
        let (reduction, report) = triangle_nof_lower_bound(m, b, true, trials, &mut r);
        let n = reduction.vertex_count();
        table.push_row(vec![
            m.to_string(),
            n.to_string(),
            behrend_set(m).len().to_string(),
            reduction.elements().to_string(),
            fmt_f64(
                reduction.implied_bcast_rounds(DisjointnessBound::ThreePartyNofDeterministic, b),
            ),
            fmt_f64(reduction.implied_bcast_rounds(DisjointnessBound::ThreePartyNofRandomized, b)),
            (n as u64).div_ceil(b as u64).to_string(),
            if trials > 0 {
                report.all_correct().to_string()
            } else {
                "(structure only)".to_owned()
            },
        ]);
    }
    table
}

/// E10 — the non-explicit counting lower bound and the trivial upper bound.
pub fn e10_counting(_scale: Scale) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E10",
        "non-explicit counting bound vs trivial upper bound",
        "some function needs (n − O(log n))/b rounds in CLIQUE-UCAST(n,b), and ⌈n/b⌉ rounds always suffice — the two are within a (1+o(1)) factor",
        &["n", "b", "trivial upper bound", "counting lower bound", "ratio"],
    );
    for n in [64usize, 256, 1024, 4096] {
        for b in [1usize, log2_bandwidth(n)] {
            let upper = counting::trivial_upper_bound_rounds(n, b);
            let lower = counting::nonexplicit_lower_bound_rounds(n, b);
            table.push_row(vec![
                n.to_string(),
                b.to_string(),
                upper.to_string(),
                fmt_f64(lower),
                fmt_f64(counting::counting_gap(n, b)),
            ]);
        }
    }
    table
}

/// E11 — Claim 6: H-free graphs have degeneracy at most 4·ex(n,H)/n.
pub fn e11_degeneracy_turan(scale: Scale) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E11",
        "degeneracy of H-free graphs (Claim 6)",
        "every H-free graph has degeneracy ≤ 4·ex(n,H)/n",
        &[
            "pattern",
            "n",
            "graph",
            "edges",
            "degeneracy",
            "bound 4·ex(n,H)/n",
        ],
    );
    let n = scale.pick(64, 128);
    let mut r = rng(1100);
    let cases: Vec<(Pattern, &str, Graph)> = vec![
        (
            Pattern::Cycle(4),
            "polarity graph",
            extremal::dense_c4_free(n),
        ),
        (
            Pattern::Cycle(4),
            "greedy C4-free",
            extremal::greedy_pattern_free(n, &generators::cycle(4), 6 * n, &mut r),
        ),
        (
            Pattern::Clique(4),
            "Turán graph T(n,3)",
            generators::turan_graph(n, 3),
        ),
        (
            Pattern::Clique(3),
            "complete bipartite",
            generators::complete_bipartite(n / 2, n - n / 2),
        ),
        (
            Pattern::Cycle(5),
            "greedy C5-free",
            extremal::greedy_pattern_free(n, &generators::cycle(5), 6 * n, &mut r),
        ),
    ];
    for (pattern, name, g) in cases {
        let bound = 4.0 * pattern.ex_upper_bound(n) / n as f64;
        let d = degeneracy(&g);
        assert!(
            (d as f64) <= bound + 1e-9,
            "Claim 6 violated for {name}: degeneracy {d} > bound {bound}"
        );
        table.push_row(vec![
            pattern.name(),
            n.to_string(),
            name.to_owned(),
            g.edge_count().to_string(),
            d.to_string(),
            fmt_f64(bound),
        ]);
    }
    table
}

/// E12 — the Becker et al. reconstruction substrate.
pub fn e12_sketch_reconstruction(scale: Scale) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E12",
        "one-round reconstruction from degeneracy sketches (Becker et al. [2])",
        "graphs of degeneracy ≤ k are reconstructed from one O(k log n)-bit broadcast per node; higher degeneracy is detected as failure",
        &["n", "true degeneracy", "capacity k", "message bits/node", "rounds (b = log n)", "outcome"],
    );
    let sizes: &[usize] = match scale {
        Scale::Quick => &[64],
        Scale::Full => &[64, 128, 256],
    };
    // One sweep point per n at b = ceil(log2 n); each point runs every
    // (instance, capacity) pair as a nested reconstruction on its session.
    let grid = CliqueConfig::builder().broadcast().grid(sizes, &[]);
    let points = Runner::sweep(grid, |config| {
        let n = config.n;
        let mut r = rng(1200 + n as u64);
        let instances: Vec<Graph> = [2usize, 4, 8]
            .iter()
            .map(|&d| generators::random_bounded_degeneracy(n, d, &mut r))
            .collect();
        move |session: &mut Session| {
            let mut rows = Vec::new();
            for g in &instances {
                let true_d = degeneracy(g);
                for capacity in [true_d.max(1), (true_d / 2).max(1)] {
                    let run = session.run_nested(&mut SketchReconstruction::new(g, capacity))?;
                    let rounds = run.rounds();
                    let outcome = match &run.result {
                        Ok(decoded) if decoded == g => "exact reconstruction",
                        Ok(_) => "WRONG reconstruction",
                        Err(_) => "failure reported",
                    };
                    rows.push(vec![
                        n.to_string(),
                        true_d.to_string(),
                        capacity.to_string(),
                        message_bits(n, capacity).to_string(),
                        rounds.to_string(),
                        outcome.to_owned(),
                    ]);
                }
            }
            Ok(rows)
        }
    })
    .expect("reconstruction sweep failed");
    for point in points {
        for row in point.outcome.into_output() {
            table.push_row(row);
        }
    }
    table
}

/// E13 — the algebraic follow-up line (Censor-Hillel et al. / Le Gall):
/// the 3D-partitioned distributed semiring matrix product and its
/// consumers.
pub fn e13_semiring_matmul(scale: Scale) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E13",
        "O(n^{1/3})-round semiring matrix product and consumers (algebraic congested clique)",
        "the 3D-partitioned distributed product costs Õ(n^{1/3}/b) rounds for d = n: rounds·b/n^{1/3} stays within logarithmic drift across the grid (entry widths and packet framing contribute the log factors); TriangleCount reproduces iso::triangles exactly; repeated (min,+) squaring yields BFS distances",
        &[
            "what", "n", "b", "detail", "rounds", "total bits", "n^{1/3}/b",
            "rounds·b/n^{1/3}", "correct",
        ],
    );

    // The (n, b) grid: d = n, one player per matrix row.
    let sizes: &[usize] = match scale {
        Scale::Quick => &[27],
        Scale::Full => &[8, 27, 64, 125],
    };
    let bandwidths: &[usize] = match scale {
        Scale::Quick => &[4],
        Scale::Full => &[1, 4, 8],
    };
    for &n in sizes {
        let mut r = rng(1300 + n as u64);
        let graph = generators::erdos_renyi(n, 0.4, &mut r);
        let adjacency_bits = graph.adjacency_bitmatrix();
        let adjacency_ints = IntMatrix::from_bitmatrix(&adjacency_bits);
        let hop_matrix = ApspProtocol::hop_matrix(&graph);
        let operands: Vec<(Semiring, SemiringMatrix)> = vec![
            (Semiring::Boolean, SemiringMatrix::Bits(adjacency_bits)),
            (Semiring::Counting, SemiringMatrix::Ints(adjacency_ints)),
            (Semiring::MinPlus, SemiringMatrix::Ints(hop_matrix)),
        ];
        for &b in bandwidths {
            for (semiring, operand) in &operands {
                let outcome = semiring_matmul(operand, operand, *semiring, b).unwrap();
                let expected = match (semiring, operand) {
                    (Semiring::Boolean, SemiringMatrix::Bits(m)) => {
                        SemiringMatrix::Bits(m.mul_bool(m))
                    }
                    (Semiring::Counting, SemiringMatrix::Ints(m)) => {
                        SemiringMatrix::Ints(m.mul_counting(m))
                    }
                    (Semiring::MinPlus, SemiringMatrix::Ints(m)) => {
                        SemiringMatrix::Ints(m.mul_min_plus(m))
                    }
                    _ => unreachable!("operand representation fixed above"),
                };
                let cbrt = (n as f64).cbrt();
                table.push_row(vec![
                    "SemiringMatMul A·A".to_owned(),
                    n.to_string(),
                    b.to_string(),
                    semiring.name().to_owned(),
                    outcome.rounds().to_string(),
                    outcome.total_bits().to_string(),
                    fmt_f64(cbrt / b as f64),
                    fmt_f64(outcome.rounds() as f64 * b as f64 / cbrt),
                    (*outcome == expected).to_string(),
                ]);
            }
        }
    }

    // TriangleCount against the ground-truth oracle on seeded random
    // graphs.
    let count_sizes: &[usize] = match scale {
        Scale::Quick => &[16],
        Scale::Full => &[16, 32, 64],
    };
    for &n in count_sizes {
        let b = log2_bandwidth(n);
        let mut r = rng(1350 + n as u64);
        for p in [0.15, 0.45] {
            let g = generators::erdos_renyi(n, p, &mut r);
            let truth = clique_core::graphs::iso::triangle_count(&g);
            let outcome = count_triangles(&g, b).unwrap();
            let cbrt = (n as f64).cbrt();
            table.push_row(vec![
                "TriangleCount trace(A³)/6".to_owned(),
                n.to_string(),
                b.to_string(),
                format!("G(n, {p}), {} triangles", truth),
                outcome.rounds().to_string(),
                outcome.total_bits().to_string(),
                fmt_f64(cbrt / b as f64),
                fmt_f64(outcome.rounds() as f64 * b as f64 / cbrt),
                (*outcome == truth).to_string(),
            ]);
        }
    }

    // (min, +) APSP vs BFS distances.
    let apsp_sizes: &[usize] = match scale {
        Scale::Quick => &[16],
        Scale::Full => &[16, 32],
    };
    for &n in apsp_sizes {
        let b = log2_bandwidth(n);
        let mut r = rng(1370 + n as u64);
        for (name, g) in [
            ("path (diameter n−1)", generators::path(n)),
            (
                "G(n, 2/n)",
                generators::erdos_renyi(n, 2.0 / n as f64, &mut r),
            ),
        ] {
            let outcome = compute_apsp(&g, b).unwrap();
            let correct = clique_core::graphs::iso::bfs_distances(&g) == *outcome;
            let cbrt = (n as f64).cbrt();
            table.push_row(vec![
                "ApspProtocol (min,+) squaring".to_owned(),
                n.to_string(),
                b.to_string(),
                name.to_owned(),
                outcome.rounds().to_string(),
                outcome.total_bits().to_string(),
                fmt_f64(cbrt / b as f64),
                fmt_f64(outcome.rounds() as f64 * b as f64 / cbrt),
                correct.to_string(),
            ]);
        }
    }
    table
}

/// Worker counts the E14 scaling rows are measured at.
const E14_WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Restores the process-wide worker override on drop, so a panicking E14
/// workload cannot leak a temporary override into the rest of the process
/// (the unit tests share it).
struct ThreadOverrideGuard(Option<usize>);

impl ThreadOverrideGuard {
    fn save() -> Self {
        Self(par::threads_override())
    }
}

impl Drop for ThreadOverrideGuard {
    fn drop(&mut self) {
        par::set_threads(self.0);
    }
}

/// Measures one E14 workload at 1/2/4/8 workers, pinning that the outcome
/// (output *and* full metrics ledger) is identical to the 1-worker run and
/// reporting the wall-clock scaling. `run` receives the worker count —
/// workloads with a per-instance knob (e.g. [`Runner::with_threads`]) use
/// it directly and leave the process-wide override alone.
fn e14_scaling_rows<T: Clone + PartialEq>(
    table: &mut ExperimentTable,
    workload: &str,
    n: usize,
    b: usize,
    mut run: impl FnMut(usize) -> RunOutcome<T>,
) {
    let mut baseline: Option<(RunOutcome<T>, f64)> = None;
    for &workers in &E14_WORKER_COUNTS {
        let start = Instant::now();
        let outcome = run(workers);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let (base_outcome, base_ms) = baseline.get_or_insert_with(|| (outcome.clone(), ms));
        let identical = *base_outcome == outcome;
        table.push_row(vec![
            workload.to_owned(),
            n.to_string(),
            b.to_string(),
            workers.to_string(),
            fmt_f64(ms),
            fmt_f64(*base_ms / ms),
            outcome.rounds().to_string(),
            identical.to_string(),
        ]);
    }
}

/// E14 — the deterministic thread-parallel execution core: wall-clock
/// scaling of the algebraic consumers and a parallel sweep grid, with the
/// transcript pinned identical at every worker count.
pub fn e14_parallel_scaling(scale: Scale) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E14",
        "deterministic thread-parallel execution core (wall-clock scaling)",
        "rounds, bits and outputs are bit-identical at 1/2/4/8 workers (the parallelism-never-changes-transcripts invariant); wall-clock time scales with the host's cores — a single-core host honestly reports ~1x",
        &[
            "workload",
            "n",
            "b",
            "workers",
            "wall ms",
            "speedup vs 1 worker",
            "rounds",
            "transcript identical",
        ],
    );

    // TriangleCount: one counting distributed product + broadcasts. The
    // per-runner knob sizes the pool, so no global state is touched.
    let tri_n = scale.pick(24, 64);
    let tri_b = log2_bandwidth(tri_n);
    let tri_g = generators::erdos_renyi(tri_n, 0.35, &mut rng(1400 + tri_n as u64));
    e14_scaling_rows(&mut table, "TriangleCount", tri_n, tri_b, |workers| {
        Runner::new(CliqueConfig::unicast(tri_n, tri_b))
            .with_threads(Some(workers))
            .execute(&mut TriangleCount::new(&tri_g))
            .expect("triangle count failed")
    });

    // APSP: repeated (min, +) squaring.
    let apsp_n = scale.pick(16, 32);
    let apsp_b = log2_bandwidth(apsp_n);
    let apsp_g =
        generators::erdos_renyi(apsp_n, 2.5 / apsp_n as f64, &mut rng(1410 + apsp_n as u64));
    e14_scaling_rows(&mut table, "ApspProtocol", apsp_n, apsp_b, |workers| {
        Runner::new(CliqueConfig::unicast(apsp_n, apsp_b))
            .with_threads(Some(workers))
            .execute(&mut ApspProtocol::new(&apsp_g))
            .expect("apsp failed")
    });

    // A sweep grid of independent TriangleCount points executed on the
    // pool via `Runner::sweep_par` (which sizes its pool from the
    // process-wide knob — set through a drop guard so a panicking point
    // cannot leak the override); the "outcome" folds every point's output
    // and ledger so the identity check covers the whole grid.
    let grid_sizes: &[usize] = scale.pick(&[8, 16][..], &[16, 32][..]);
    let grid_bandwidths: &[usize] = &[4, 8];
    let grid_n = *grid_sizes.last().expect("non-empty grid");
    e14_scaling_rows(
        &mut table,
        "sweep_par TriangleCount grid",
        grid_n,
        8,
        |workers| {
            let _guard = ThreadOverrideGuard::save();
            par::set_threads(Some(workers));
            let grid = CliqueConfig::builder()
                .unicast()
                .grid(grid_sizes, grid_bandwidths);
            let points = Runner::sweep_par(grid, |config| {
                let n = config.n;
                let g = generators::erdos_renyi(n, 0.3, &mut rng(1420 + n as u64));
                move |session: &mut Session| session.run_protocol(&mut TriangleCount::new(&g))
            })
            .expect("sweep failed");
            let mut metrics = Metrics::new();
            let mut outputs = Vec::new();
            for point in points {
                metrics.absorb(&point.outcome.metrics);
                outputs.push((
                    point.config.n,
                    point.config.bandwidth,
                    point.outcome.into_output(),
                ));
            }
            RunOutcome::new(outputs, metrics)
        },
    );
    table
}

/// E15 — constant-round deterministic MST on graph sketches: phases (and
/// hence rounds at `b = Θ(log n)`) stay flat as `n` grows on bounded-cut
/// families, with a clique as the escalation contrast.
pub fn e15_mst_sketches(scale: Scale) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E15",
        "deterministic MST on graph sketches (signed-incidence Borůvka)",
        "with O(k log n)-bit incidence sketches, families whose contractions keep a decodable component finish in one broadcast phase at every size — the constant-round plateau; a clique forces Θ(log(n/k)) capacity escalations (contrast row); the forest always equals the Kruskal oracle",
        &[
            "family",
            "n",
            "m",
            "b",
            "base k",
            "phases",
            "final k",
            "rounds",
            "bits",
            "weight = oracle",
        ],
    );
    let sizes: &[usize] = scale.pick(&[16, 24, 32][..], &[16, 32, 48, 64, 96][..]);
    let base_capacity = 4;
    for &n in sizes {
        let b = log2_bandwidth(n);
        // Polynomially bounded weights, small enough to force duplicates.
        let max_weight = 2 * n as u64;
        let mut r = rng(1500 + n as u64);
        let families: Vec<(&str, WeightedGraph)> = vec![
            ("path", weighted::weighted_path(n, max_weight, &mut r)),
            ("cycle", weighted::weighted_cycle(n, max_weight, &mut r)),
            (
                "random tree",
                weighted::weighted_random_tree(n, max_weight, &mut r),
            ),
            (
                "sparse G(n, 3/n)",
                weighted::weighted_erdos_renyi(n, 3.0 / n as f64, max_weight, &mut r),
            ),
            (
                "dense C4-free (polarity)",
                weighted::random_weights(&extremal::dense_c4_free(n), max_weight, &mut r),
            ),
            (
                "complete (contrast)",
                weighted::weighted_complete(n, max_weight, &mut r),
            ),
        ];
        for (family, graph) in families {
            let run = compute_msf(&graph, base_capacity, b).expect("msf run failed");
            let oracle = minimum_spanning_forest(&graph);
            table.push_row(vec![
                family.to_owned(),
                n.to_string(),
                graph.edge_count().to_string(),
                b.to_string(),
                base_capacity.to_string(),
                run.phases.to_string(),
                run.final_capacity.to_string(),
                run.rounds().to_string(),
                run.total_bits().to_string(),
                (run.forest() == oracle).to_string(),
            ]);
        }
    }
    table
}

/// E16 — serving layer: the sharded, caching job server returns transcripts
/// byte-identical to direct `Runner` executions.
pub fn e16_serve(scale: Scale) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E16",
        "serving layer: sharded caching job server vs direct runs",
        "served transcripts are byte-identical to direct Runner executions at every fleet size and worker count, same-batch duplicates run once, and a warm resubmission is answered entirely from the transcript cache",
        &[
            "protocol",
            "family",
            "jobs",
            "unique",
            "cold ran",
            "warm hits",
            "served = direct",
            "1 worker = 4 workers",
        ],
    );
    let cases: &[(&str, &str)] = &[
        ("mst", "weighted_random_tree"),
        ("triangle-count", "erdos_renyi(p=0.5)"),
        ("apsp", "erdos_renyi(p=0.15)"),
        ("c4-turan-sketch", "erdos_renyi(p=0.15)"),
        ("c4-full-broadcast", "cycle"),
    ];
    let sizes: &[usize] = scale.pick(&[6, 9][..], &[6, 9, 14, 20][..]);
    let seeds: &[u64] = &[0x5EED, 0xD1FF];
    for &(protocol, family) in cases {
        let specs: Vec<JobSpec> = sizes
            .iter()
            .flat_map(|&n| {
                let b = log2_bandwidth(n);
                seeds.iter().map(move |&seed| {
                    if protocol == "mst" {
                        JobSpec::weighted(protocol, family, n, b, 2 * n as u64, seed)
                    } else {
                        JobSpec::unweighted(protocol, family, n, b, seed)
                    }
                })
            })
            .collect();
        // Every spec appears twice in the cold batch, so in-batch dedupe is
        // exercised alongside the cache.
        let mix: Vec<JobSpec> = specs.iter().chain(specs.iter()).cloned().collect();
        let mut fleet = Server::new(ServerConfig {
            workers: 4,
            batch_size: 2,
            ..ServerConfig::default()
        });
        let mut solo = Server::new(ServerConfig::default());
        let cold = fleet.submit_batch(&mix).expect("cold batch failed");
        let cold_ran = fleet.stats().ran;
        let warm = fleet.submit_batch(&mix).expect("warm batch failed");
        let warm_hits = warm.iter().filter(|r| r.cached).count();
        let solo_results = solo.submit_batch(&mix).expect("solo batch failed");
        let direct_ok = cold.iter().zip(&warm).all(|(c, w)| {
            let direct = Server::run_direct(&c.spec).expect("direct run failed");
            c.record == direct && w.record == direct
        });
        let fleet_ok = cold
            .iter()
            .zip(&solo_results)
            .all(|(f, s)| f.record == s.record);
        table.push_row(vec![
            protocol.to_owned(),
            family.to_owned(),
            mix.len().to_string(),
            specs.len().to_string(),
            cold_ran.to_string(),
            warm_hits.to_string(),
            direct_ok.to_string(),
            fleet_ok.to_string(),
        ]);
    }
    table
}

/// E17 — chaos engineering: under seeded fault injection every served
/// record is byte-identical to the fault-free reference or a clean typed
/// error, and the retry layer's detection/recovery rates are tabulated
/// against the injection rate.
pub fn e17_chaos(scale: Scale) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E17",
        "chaos: seeded fault injection vs detection and retry recovery",
        "for every fault kind and injection rate, each job pooled over four protocols either serves a record byte-identical to the fault-free reference or fails with a clean typed error (silent wrong = 0 everywhere); detected transport faults are retried deterministically, and the recovery rate falls as the rate climbs",
        &[
            "kinds",
            "rate (ppm)",
            "jobs",
            "served",
            "typed errors",
            "silent wrong",
            "detected",
            "retries",
            "recovered",
            "quarantined",
            "detection rate",
            "recovery rate",
        ],
    );
    let sizes: &[usize] = scale.pick(&[6, 7][..], &[6, 9, 12][..]);
    let seeds: &[u64] = scale.pick(&[1][..], &[1, 2][..]);
    let rates: &[u32] = scale.pick(
        &[0, 20_000, 120_000][..],
        &[0, 5_000, 20_000, 120_000, 400_000][..],
    );
    let specs = crate::chaos::chaos_job_pool(sizes, seeds);
    let kind_sets: Vec<(String, Vec<FaultKind>)> = INJECTABLE_FAULTS
        .iter()
        .map(|&kind| (kind.name().to_owned(), vec![kind]))
        .chain(std::iter::once((
            "mixed".to_owned(),
            INJECTABLE_FAULTS.to_vec(),
        )))
        .collect();
    for (label, kinds) in &kind_sets {
        for &rate in rates {
            let report = crate::chaos::run_chaos_cell(&specs, kinds, label, 0xC4A05, rate, 4);
            let fmt_rate = |rate: Option<f64>| match rate {
                Some(value) => fmt_f64(value),
                None => "-".to_owned(),
            };
            table.push_row(vec![
                report.kinds.clone(),
                report.rate_ppm.to_string(),
                report.jobs.to_string(),
                report.served.to_string(),
                report.typed_failures.to_string(),
                report.silently_wrong.to_string(),
                report.faults_detected.to_string(),
                report.retries.to_string(),
                report.recovered.to_string(),
                report.quarantined.to_string(),
                fmt_rate(report.detection_rate()),
                fmt_rate(report.recovery_rate()),
            ]);
        }
    }
    table
}

/// E18 — the sub-cubic schedules (Censor-Hillel et al. / Le Gall): the
/// Strassen-partitioned [`FastMatMul`] and the nnz-charged
/// `SparseMatMul` against the cubic 3D partition, rounds and bits at
/// equal bandwidth with an oracle-equality column.
pub fn e18_fast_matmul(scale: Scale) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E18",
        "sub-cubic distributed matmul: strassen and sparse schedules vs the cubic partition",
        "on dense ring-embeddable operands (F2, counting) with at least two rows per player, the depth-L Strassen partition spreads 7^L quarter-size leaf products over disjoint groups and takes strictly fewer rounds than the cubic 3D partition at equal bandwidth (at n=28 the dispatcher falls back to cubic, the honest crossover floor); on sparse operands the nnz-charged path moves a fraction of the cubic partition's bits everywhere and strictly fewer rounds from n = 56 up, on all four semirings; every schedule's product equals the local-kernel oracle",
        &[
            "what",
            "n",
            "d",
            "b",
            "semiring",
            "schedule",
            "levels",
            "rounds",
            "total bits",
            "rounds/cubic",
            "oracle =",
        ],
    );

    let random_bits = |d: usize, seed: u64| {
        let mut r = rng(1800 + seed);
        let mut m = BitMatrix::zeros(d, d);
        for row in 0..d {
            for col in 0..d {
                m.set(row, col, r.gen_bool(0.5));
            }
        }
        m
    };
    let random_ints = |d: usize, max: u64, seed: u64| {
        let mut r = rng(1850 + seed);
        let mut m = IntMatrix::zeros(d, d);
        for row in 0..d {
            for col in 0..d {
                m.set(row, col, r.gen_range(0..max + 1));
            }
        }
        m
    };

    // Dense grid: d rows over n players (d ≥ 2n engages the fast
    // schedule; the n = 28 point is below the 7-group minimum and pins
    // the cubic fallback).
    let dense_points: &[(usize, usize)] = scale.pick(
        &[(28, 84), (56, 112)][..],
        &[(28, 84), (56, 112), (56, 168), (98, 196), (98, 294)][..],
    );
    let bandwidths: &[usize] = scale.pick(&[4][..], &[4, 16][..]);
    for &(n, d) in dense_points {
        let seed = (n * d) as u64;
        let operands: Vec<(Semiring, SemiringMatrix, SemiringMatrix, SemiringMatrix)> = vec![
            {
                let (a, b) = (random_bits(d, seed), random_bits(d, seed + 1));
                let oracle = a.mul_f2(&b);
                (
                    Semiring::F2,
                    SemiringMatrix::Bits(a),
                    SemiringMatrix::Bits(b),
                    SemiringMatrix::Bits(oracle),
                )
            },
            {
                let (a, b) = (random_ints(d, 3, seed), random_ints(d, 3, seed + 1));
                let oracle = a.mul_counting(&b);
                (
                    Semiring::Counting,
                    SemiringMatrix::Ints(a),
                    SemiringMatrix::Ints(b),
                    SemiringMatrix::Ints(oracle),
                )
            },
        ];
        for &b in bandwidths {
            for (semiring, ma, mb, oracle) in &operands {
                let run = |p: &mut dyn Protocol<Output = SemiringMatrix>| {
                    Runner::new(CliqueConfig::unicast(n, b)).execute(p).unwrap()
                };
                let cubic = run(&mut SemiringMatMul::new(ma, mb, *semiring));
                let fast = run(&mut FastMatMul::new(ma, mb, *semiring));
                let levels = FastMatMul::levels_for(n, d);
                for (schedule, levels, outcome) in
                    [("cubic", 0u32, &cubic), ("strassen", levels, &fast)]
                {
                    table.push_row(vec![
                        "dense A·B".to_owned(),
                        n.to_string(),
                        d.to_string(),
                        b.to_string(),
                        semiring.name().to_owned(),
                        schedule.to_owned(),
                        levels.to_string(),
                        outcome.rounds().to_string(),
                        outcome.total_bits().to_string(),
                        fmt_f64(outcome.rounds() as f64 / cubic.rounds() as f64),
                        (**outcome == *oracle).to_string(),
                    ]);
                }
            }
        }
    }

    // Sparse grid: d = n, ~2 non-identity entries per row — the
    // nnz-charged path against the dense-charged cubic exchange, on all
    // four semirings (the sparse path needs no additive inverse).
    let sparse_sizes: &[usize] = scale.pick(&[27, 56][..], &[27, 56, 98][..]);
    for &n in sparse_sizes {
        let mut r = rng(1880 + n as u64);
        let graph = generators::erdos_renyi(n, 2.0 / n as f64, &mut r);
        let adjacency_bits = graph.adjacency_bitmatrix();
        let adjacency_ints = IntMatrix::from_bitmatrix(&adjacency_bits);
        let hops = ApspProtocol::hop_matrix(&graph);
        let operands: Vec<(Semiring, SemiringMatrix, SemiringMatrix)> = vec![
            {
                let oracle = adjacency_bits.mul_bool(&adjacency_bits);
                (
                    Semiring::Boolean,
                    SemiringMatrix::Bits(adjacency_bits.clone()),
                    SemiringMatrix::Bits(oracle),
                )
            },
            {
                let oracle = adjacency_bits.mul_f2(&adjacency_bits);
                (
                    Semiring::F2,
                    SemiringMatrix::Bits(adjacency_bits.clone()),
                    SemiringMatrix::Bits(oracle),
                )
            },
            {
                let oracle = adjacency_ints.mul_counting(&adjacency_ints);
                (
                    Semiring::Counting,
                    SemiringMatrix::Ints(adjacency_ints.clone()),
                    SemiringMatrix::Ints(oracle),
                )
            },
            {
                let oracle = hops.mul_min_plus(&hops);
                (
                    Semiring::MinPlus,
                    SemiringMatrix::Ints(hops.clone()),
                    SemiringMatrix::Ints(oracle),
                )
            },
        ];
        let b = 4;
        for (semiring, operand, oracle) in &operands {
            let cubic = semiring_matmul(operand, operand, *semiring, b).unwrap();
            let sparse = sparse_matmul(operand, operand, *semiring, b).unwrap();
            for (schedule, outcome) in [("cubic", &cubic), ("sparse", &sparse)] {
                table.push_row(vec![
                    "sparse A·A".to_owned(),
                    n.to_string(),
                    n.to_string(),
                    b.to_string(),
                    semiring.name().to_owned(),
                    schedule.to_owned(),
                    "0".to_owned(),
                    outcome.rounds().to_string(),
                    outcome.total_bits().to_string(),
                    fmt_f64(outcome.rounds() as f64 / cubic.rounds() as f64),
                    (**outcome == *oracle).to_string(),
                ]);
            }
        }
    }
    table
}

/// One registered experiment: its id, a one-line description for
/// `--list`-style output, and the function regenerating its table.
pub struct ExperimentEntry {
    /// Stable identifier (`"E1"` … `"E16"`).
    pub id: &'static str,
    /// One-line description of what the experiment reproduces.
    pub description: &'static str,
    /// Regenerates the experiment's table at the given scale.
    pub run: fn(Scale) -> ExperimentTable,
}

/// The experiment registry: the single id → runner table shared by the
/// `experiments` binary, `run_all` and the docs index.
pub const EXPERIMENTS: &[ExperimentEntry] = &[
    ExperimentEntry {
        id: "E1",
        description:
            "Theorem 2: bounded-depth separable-gate circuits simulated in O(depth) rounds",
        run: e1_circuit_simulation,
    },
    ExperimentEntry {
        id: "E2",
        description: "Lemma 1 routing: balanced vs direct vs Valiant delivery of bounded demands",
        run: e2_routing,
    },
    ExperimentEntry {
        id: "E3",
        description: "Section 2.1: triangle detection via F2 matrix-multiplication circuits",
        run: e3_triangle_matmul,
    },
    ExperimentEntry {
        id: "E4",
        description: "Theorem 7: subgraph detection with degeneracy sketches vs Turan-number bound",
        run: e4_subgraph_turan,
    },
    ExperimentEntry {
        id: "E5",
        description: "Theorem 9: adaptive detection without knowing ex(n, H)",
        run: e5_adaptive,
    },
    ExperimentEntry {
        id: "E6",
        description: "Section 3.4: clique detection lower bounds from disjointness gadgets",
        run: e6_lower_bound_cliques,
    },
    ExperimentEntry {
        id: "E7",
        description: "Section 3.5: cycle detection lower bounds",
        run: e7_lower_bound_cycles,
    },
    ExperimentEntry {
        id: "E8",
        description: "Section 3.6: bipartite detection lower bounds",
        run: e8_lower_bound_bipartite,
    },
    ExperimentEntry {
        id: "E9",
        description: "Section 3.3: triangle number-on-forehead lower bound construction",
        run: e9_triangle_nof,
    },
    ExperimentEntry {
        id: "E10",
        description: "counting bounds: Behrend-set sizes behind the lower-bound graphs",
        run: e10_counting,
    },
    ExperimentEntry {
        id: "E11",
        description: "degeneracy vs Turan: the quantities driving Theorems 7-9",
        run: e11_degeneracy_turan,
    },
    ExperimentEntry {
        id: "E12",
        description: "Becker et al. sketch reconstruction A(G, k): message bits vs bound",
        run: e12_sketch_reconstruction,
    },
    ExperimentEntry {
        id: "E13",
        description: "O(n^(1/3))-round distributed semiring matmul, triangle counting, APSP",
        run: e13_semiring_matmul,
    },
    ExperimentEntry {
        id: "E14",
        description:
            "deterministic thread-parallel execution: speedups with byte-identical transcripts",
        run: e14_parallel_scaling,
    },
    ExperimentEntry {
        id: "E15",
        description:
            "deterministic MST on incidence sketches: constant-round plateau vs escalation",
        run: e15_mst_sketches,
    },
    ExperimentEntry {
        id: "E16",
        description: "serving layer: sharded caching job server vs direct runs, byte-identical",
        run: e16_serve,
    },
    ExperimentEntry {
        id: "E17",
        description: "chaos: seeded fault injection, never silently wrong, retry recovery rates",
        run: e17_chaos,
    },
    ExperimentEntry {
        id: "E18",
        description: "sub-cubic matmul: strassen-partitioned and nnz-charged schedules vs cubic",
        run: e18_fast_matmul,
    },
];

/// Looks up an experiment by id.
pub fn find_experiment(id: &str) -> Option<&'static ExperimentEntry> {
    EXPERIMENTS.iter().find(|entry| entry.id == id)
}

/// Runs every experiment at the given scale.
pub fn run_all(scale: Scale) -> Vec<ExperimentTable> {
    EXPERIMENTS.iter().map(|entry| (entry.run)(scale)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_experiments_produce_rows() {
        // The cheap experiments can be exercised end-to-end in unit tests.
        for table in [
            e2_routing(Scale::Quick),
            e10_counting(Scale::Quick),
            e11_degeneracy_turan(Scale::Quick),
        ] {
            assert!(!table.rows.is_empty(), "{} produced no rows", table.id);
            assert!(table.to_markdown().contains(&table.id));
        }
    }

    #[test]
    fn semiring_experiment_rows_are_all_correct() {
        let table = e13_semiring_matmul(Scale::Quick);
        let correct_col = table.headers.iter().position(|h| h == "correct").unwrap();
        assert!(!table.rows.is_empty());
        assert!(
            table.rows.iter().all(|r| r[correct_col] == "true"),
            "an E13 row disagrees with its reference"
        );
    }

    #[test]
    fn parallel_scaling_transcripts_are_identical() {
        let table = e14_parallel_scaling(Scale::Quick);
        let col = table
            .headers
            .iter()
            .position(|h| h == "transcript identical")
            .unwrap();
        assert!(!table.rows.is_empty());
        assert!(
            table.rows.iter().all(|r| r[col] == "true"),
            "an E14 worker count changed a transcript"
        );
    }

    #[test]
    fn mst_experiment_rows_match_oracle_and_plateau() {
        let table = e15_mst_sketches(Scale::Quick);
        let ok_col = table
            .headers
            .iter()
            .position(|h| h == "weight = oracle")
            .unwrap();
        let phases_col = table.headers.iter().position(|h| h == "phases").unwrap();
        let family_col = table.headers.iter().position(|h| h == "family").unwrap();
        assert!(!table.rows.is_empty());
        assert!(
            table.rows.iter().all(|r| r[ok_col] == "true"),
            "an E15 row disagrees with the Kruskal oracle"
        );
        // The plateau: the bounded-cut families finish in one phase at
        // every size, while the clique contrast always escalates.
        for row in &table.rows {
            let family = row[family_col].as_str();
            if ["path", "cycle", "random tree"].contains(&family) {
                assert_eq!(row[phases_col], "1", "{family} escalated");
            }
            if family.contains("contrast") {
                assert!(
                    row[phases_col] != "1",
                    "the clique contrast did not escalate"
                );
            }
        }
    }

    #[test]
    fn experiment_registry_is_complete_and_unique() {
        assert_eq!(EXPERIMENTS.len(), 18);
        for (i, entry) in EXPERIMENTS.iter().enumerate() {
            assert_eq!(entry.id, format!("E{}", i + 1));
            assert!(!entry.description.is_empty());
            assert_eq!(find_experiment(entry.id).unwrap().id, entry.id);
        }
        assert!(find_experiment("E19").is_none());
    }

    #[test]
    fn fast_matmul_experiment_beats_cubic_where_claimed() {
        let table = e18_fast_matmul(Scale::Quick);
        let what_col = table.headers.iter().position(|h| h == "what").unwrap();
        let n_col = table.headers.iter().position(|h| h == "n").unwrap();
        let schedule_col = table.headers.iter().position(|h| h == "schedule").unwrap();
        let rounds_col = table.headers.iter().position(|h| h == "rounds").unwrap();
        let oracle_col = table.headers.iter().position(|h| h == "oracle =").unwrap();
        assert!(!table.rows.is_empty());
        assert!(
            table.rows.iter().all(|r| r[oracle_col] == "true"),
            "an E18 schedule disagrees with the local-kernel oracle"
        );
        let rounds = |what: &str, n: &str, schedule: &str| -> Vec<u64> {
            table
                .rows
                .iter()
                .filter(|r| r[what_col] == what && r[n_col] == n && r[schedule_col] == schedule)
                .map(|r| r[rounds_col].parse().unwrap())
                .collect()
        };
        // At n = 56, d = 2n the strassen schedule is strictly ahead of the
        // cubic partition on every dense row; n = 28 pins the fallback
        // (identical rounds — the dispatcher would choose cubic anyway).
        for (fast, cubic) in rounds("dense A·B", "56", "strassen")
            .into_iter()
            .zip(rounds("dense A·B", "56", "cubic"))
        {
            assert!(fast < cubic, "strassen {fast} rounds vs cubic {cubic}");
        }
        for (fast, cubic) in rounds("dense A·B", "28", "strassen")
            .into_iter()
            .zip(rounds("dense A·B", "28", "cubic"))
        {
            assert_eq!(fast, cubic, "the n = 28 fallback diverged from cubic");
        }
        // The nnz-charged path never loses rounds at n = 56 and moves a
        // fraction of the cubic bits on every sparse row (the wide-entry
        // semirings also win rounds strictly; the 1-bit ones tie on the
        // round floor while moving ~6x fewer bits).
        let semiring_col = table.headers.iter().position(|h| h == "semiring").unwrap();
        let bits_col = table
            .headers
            .iter()
            .position(|h| h == "total bits")
            .unwrap();
        for row in table.rows.iter().filter(|r| {
            r[what_col] == "sparse A·A" && r[n_col] == "56" && r[schedule_col] == "sparse"
        }) {
            let cubic_row = table
                .rows
                .iter()
                .find(|r| {
                    r[what_col] == "sparse A·A"
                        && r[n_col] == "56"
                        && r[schedule_col] == "cubic"
                        && r[semiring_col] == row[semiring_col]
                })
                .unwrap();
            let (sparse, cubic): (u64, u64) = (
                row[rounds_col].parse().unwrap(),
                cubic_row[rounds_col].parse().unwrap(),
            );
            let (sparse_bits, cubic_bits): (u64, u64) = (
                row[bits_col].parse().unwrap(),
                cubic_row[bits_col].parse().unwrap(),
            );
            assert!(sparse <= cubic, "sparse {sparse} rounds vs cubic {cubic}");
            assert!(
                sparse_bits * 3 < cubic_bits,
                "sparse {sparse_bits} bits vs cubic {cubic_bits}"
            );
            if matches!(row[semiring_col].as_str(), "counting" | "min-plus") {
                assert!(sparse < cubic, "sparse {sparse} rounds vs cubic {cubic}");
            }
        }
    }

    #[test]
    fn chaos_experiment_is_never_silently_wrong() {
        let table = e17_chaos(Scale::Quick);
        let silent_col = table
            .headers
            .iter()
            .position(|h| h == "silent wrong")
            .unwrap();
        let rate_col = table
            .headers
            .iter()
            .position(|h| h == "rate (ppm)")
            .unwrap();
        let jobs_col = table.headers.iter().position(|h| h == "jobs").unwrap();
        let served_col = table.headers.iter().position(|h| h == "served").unwrap();
        let detected_col = table.headers.iter().position(|h| h == "detected").unwrap();
        assert!(table.rows.len() >= 9, "fewer than 3 kinds x 3 rates");
        let mut detected_any = false;
        for row in &table.rows {
            assert_eq!(row[silent_col], "0", "an E17 cell was silently wrong");
            if row[rate_col] == "0" {
                assert_eq!(
                    row[served_col], row[jobs_col],
                    "a zero-rate cell failed a job"
                );
                assert_eq!(row[detected_col], "0", "a zero-rate cell detected faults");
            } else if row[detected_col] != "0" {
                detected_any = true;
            }
        }
        assert!(detected_any, "no nonzero-rate cell injected anything");
    }

    #[test]
    fn serve_experiment_rows_are_all_deterministic() {
        let table = e16_serve(Scale::Quick);
        let direct_col = table
            .headers
            .iter()
            .position(|h| h == "served = direct")
            .unwrap();
        let fleet_col = table
            .headers
            .iter()
            .position(|h| h == "1 worker = 4 workers")
            .unwrap();
        assert!(!table.rows.is_empty());
        for row in &table.rows {
            assert_eq!(row[direct_col], "true", "served record diverged");
            assert_eq!(row[fleet_col], "true", "fleet size changed a record");
        }
    }

    #[test]
    fn circuit_experiment_reports_correct_simulations() {
        let table = e1_circuit_simulation(Scale::Quick);
        let correct_col = table.headers.iter().position(|h| h == "correct").unwrap();
        assert!(table.rows.iter().all(|r| r[correct_col] == "true"));
    }

    #[test]
    fn lower_bound_experiments_are_consistent() {
        let table = e6_lower_bound_cliques(Scale::Quick);
        let lower = table
            .headers
            .iter()
            .position(|h| h.contains("lower"))
            .unwrap();
        let upper = table
            .headers
            .iter()
            .position(|h| h.contains("upper"))
            .unwrap();
        for row in &table.rows {
            let l: f64 = row[lower].parse().unwrap();
            let u: f64 = row[upper].parse().unwrap();
            assert!(
                l <= u + 1.0,
                "implied lower bound {l} exceeds measured upper bound {u}"
            );
        }
    }
}
