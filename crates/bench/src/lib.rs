//! # clique-bench — the experiment and benchmark harness
//!
//! The paper has no numeric tables or figures (its results are theorems), so
//! the "tables" this harness regenerates are the per-theorem experiments
//! listed in DESIGN.md (E1–E15): every experiment runs the corresponding
//! construction over a parameter sweep and reports the measured rounds, bits
//! or sizes next to the bound the theorem predicts.
//!
//! * `cargo run -p clique-bench --release --bin experiments` regenerates the
//!   full EXPERIMENTS.md tables (pass `--quick` for a fast smoke run, or an
//!   experiment id such as `E4` to run a single experiment).
//! * `cargo bench -p clique-bench` runs one Criterion benchmark group per
//!   experiment on reduced sizes, measuring the wall-clock cost of the
//!   underlying simulations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod experiments;
pub mod table;

pub use diff::{assert_protocol_matches_oracle, unweighted_grid, weighted_grid, LabeledCase};
pub use experiments::{run_all, Scale};
pub use table::ExperimentTable;

/// Parses the value of a `--threads` CLI flag for the harness binaries;
/// anything but a positive integer exits with status 2, matching the other
/// flag errors.
pub fn parse_threads_flag(value: Option<&String>) -> usize {
    let Some(value) = value else {
        eprintln!("error: --threads requires a value (a positive integer)");
        std::process::exit(2);
    };
    match value.parse::<usize>() {
        Ok(t) if t >= 1 => t,
        _ => {
            eprintln!("error: invalid --threads value {value} (expected a positive integer)");
            std::process::exit(2);
        }
    }
}
