//! # clique-bench — the experiment and benchmark harness
//!
//! The paper has no numeric tables or figures (its results are theorems), so
//! the "tables" this harness regenerates are the per-theorem experiments
//! listed in DESIGN.md (E1–E18): every experiment runs the corresponding
//! construction over a parameter sweep and reports the measured rounds, bits
//! or sizes next to the bound the theorem predicts.
//!
//! * `cargo run -p clique-bench --release --bin experiments` regenerates the
//!   full EXPERIMENTS.md tables (pass `--quick` for a fast smoke run, or an
//!   experiment id such as `E4` to run a single experiment).
//! * `cargo bench -p clique-bench` runs one Criterion benchmark group per
//!   experiment on reduced sizes, measuring the wall-clock cost of the
//!   underlying simulations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod diff;
pub mod experiments;
pub mod table;

pub use chaos::{chaos_job_pool, run_chaos_cell, ChaosReport, CHAOS_PROTOCOLS};
pub use diff::{assert_protocol_matches_oracle, unweighted_grid, weighted_grid, LabeledCase};
pub use experiments::{run_all, ExperimentEntry, Scale, EXPERIMENTS};
pub use table::ExperimentTable;

/// Parses the value of a `--threads` CLI flag for the harness binaries;
/// anything but a positive integer exits with status 2, matching the other
/// flag errors.
pub fn parse_threads_flag(value: Option<&String>) -> usize {
    match try_parse_threads(value) {
        Ok(t) => t,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    }
}

/// [`parse_threads_flag`] without the exit, for testability and callers
/// that report errors themselves.
///
/// # Errors
///
/// Returns the diagnostic to print when the value is missing or not a
/// positive integer.
pub fn try_parse_threads(value: Option<&String>) -> Result<usize, String> {
    let Some(value) = value else {
        return Err("--threads requires a value (a positive integer)".to_owned());
    };
    match value.parse::<usize>() {
        Ok(t) if t >= 1 => Ok(t),
        _ => Err(format!(
            "invalid --threads value {value} (expected a positive integer)"
        )),
    }
}

/// Parses the value of a `--lane` CLI flag for the harness binaries;
/// anything but `64` or `128` exits with status 2, matching the other flag
/// errors.
pub fn parse_lane_flag(value: Option<&String>) -> usize {
    match try_parse_lane(value) {
        Ok(w) => w,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    }
}

/// [`parse_lane_flag`] without the exit, for testability and callers that
/// report errors themselves.
///
/// # Errors
///
/// Returns the diagnostic to print when the value is missing or not a
/// supported lane width.
pub fn try_parse_lane(value: Option<&String>) -> Result<usize, String> {
    let Some(value) = value else {
        return Err("--lane requires a value (64 or 128)".to_owned());
    };
    match value.parse::<usize>() {
        Ok(w) if w == 64 || w == 128 => Ok(w),
        _ => Err(format!("invalid --lane value {value} (expected 64 or 128)")),
    }
}

/// What an `experiments` invocation asks for.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExperimentsCommand {
    /// `--list`: print the registered experiment ids and descriptions.
    List,
    /// Regenerate tables.
    Run(ExperimentsRun),
}

/// A parsed table-regeneration request.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExperimentsRun {
    /// `--quick`: smoke sizes instead of the committed full sweep.
    pub quick: bool,
    /// `--json`: machine-readable output.
    pub json: bool,
    /// `--threads N`: worker-pool override.
    pub threads: Option<usize>,
    /// `--lane {64,128}`: the lane width the run is expected to execute
    /// at. The width is a compile-time choice (the `lane128` feature), so
    /// the binary verifies the request against what it was built with.
    pub lane: Option<usize>,
    /// Selected experiment ids (uppercased); empty = all.
    pub selected: Vec<String>,
}

/// Parses the `experiments` binary's CLI against the experiment registry.
///
/// # Errors
///
/// Returns the diagnostic to print (the caller exits with status 2) on an
/// unknown flag, a bad `--threads` value, or an unknown experiment id.
pub fn parse_experiments_args(args: &[String]) -> Result<ExperimentsCommand, String> {
    let mut run = ExperimentsRun::default();
    let mut list = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--list" => list = true,
            "--quick" => run.quick = true,
            "--json" => run.json = true,
            "--threads" => {
                run.threads = Some(try_parse_threads(args.get(i + 1))?);
                i += 1;
            }
            "--lane" => {
                run.lane = Some(try_parse_lane(args.get(i + 1))?);
                i += 1;
            }
            flag if flag.starts_with("--") => {
                return Err(format!(
                    "unknown flag {flag} (expected --list, --quick, --json, --threads N or --lane W)"
                ));
            }
            id => run.selected.push(id.to_uppercase()),
        }
        i += 1;
    }
    for id in &run.selected {
        if experiments::find_experiment(id).is_none() {
            let known: Vec<&str> = EXPERIMENTS.iter().map(|e| e.id).collect();
            return Err(format!(
                "unknown experiment id {id} (expected one of {})",
                known.join(", ")
            ));
        }
    }
    Ok(if list {
        ExperimentsCommand::List
    } else {
        ExperimentsCommand::Run(run)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn list_flag_wins_and_parses() {
        assert_eq!(
            parse_experiments_args(&args(&["--list"])),
            Ok(ExperimentsCommand::List)
        );
        // --list combined with other flags still lists (nothing runs).
        assert_eq!(
            parse_experiments_args(&args(&["--quick", "--list", "E4"])),
            Ok(ExperimentsCommand::List)
        );
    }

    #[test]
    fn run_flags_and_ids_parse() {
        let parsed = parse_experiments_args(&args(&["--quick", "--json", "e4", "E16"])).unwrap();
        assert_eq!(
            parsed,
            ExperimentsCommand::Run(ExperimentsRun {
                quick: true,
                json: true,
                threads: None,
                lane: None,
                selected: vec!["E4".to_owned(), "E16".to_owned()],
            })
        );
        let parsed = parse_experiments_args(&args(&["--threads", "3"])).unwrap();
        assert_eq!(
            parsed,
            ExperimentsCommand::Run(ExperimentsRun {
                threads: Some(3),
                ..ExperimentsRun::default()
            })
        );
    }

    #[test]
    fn bad_inputs_are_rejected_with_a_diagnostic() {
        assert!(parse_experiments_args(&args(&["--nope"]))
            .unwrap_err()
            .contains("unknown flag"));
        assert!(parse_experiments_args(&args(&["E99"]))
            .unwrap_err()
            .contains("unknown experiment id"));
        assert!(parse_experiments_args(&args(&["--threads"]))
            .unwrap_err()
            .contains("--threads requires a value"));
        assert!(parse_experiments_args(&args(&["--threads", "0"]))
            .unwrap_err()
            .contains("invalid --threads value"));
        assert!(try_parse_threads(Some(&"x".to_owned())).is_err());
        assert_eq!(try_parse_threads(Some(&"2".to_owned())), Ok(2));
    }

    #[test]
    fn lane_flag_accepts_exactly_the_supported_widths() {
        assert_eq!(try_parse_lane(Some(&"64".to_owned())), Ok(64));
        assert_eq!(try_parse_lane(Some(&"128".to_owned())), Ok(128));
        assert!(try_parse_lane(None)
            .unwrap_err()
            .contains("--lane requires a value"));
        for bad in ["0", "32", "256", "x", ""] {
            assert!(
                try_parse_lane(Some(&bad.to_owned()))
                    .unwrap_err()
                    .contains("invalid --lane value"),
                "{bad} must be rejected"
            );
        }
        let parsed = parse_experiments_args(&args(&["--lane", "128"])).unwrap();
        assert_eq!(
            parsed,
            ExperimentsCommand::Run(ExperimentsRun {
                lane: Some(128),
                ..ExperimentsRun::default()
            })
        );
        assert!(parse_experiments_args(&args(&["--lane", "7"])).is_err());
    }
}
