//! # clique-bench — the experiment and benchmark harness
//!
//! The paper has no numeric tables or figures (its results are theorems), so
//! the "tables" this harness regenerates are the per-theorem experiments
//! listed in DESIGN.md (E1–E13): every experiment runs the corresponding
//! construction over a parameter sweep and reports the measured rounds, bits
//! or sizes next to the bound the theorem predicts.
//!
//! * `cargo run -p clique-bench --release --bin experiments` regenerates the
//!   full EXPERIMENTS.md tables (pass `--quick` for a fast smoke run, or an
//!   experiment id such as `E4` to run a single experiment).
//! * `cargo bench -p clique-bench` runs one Criterion benchmark group per
//!   experiment on reduced sizes, measuring the wall-clock cost of the
//!   underlying simulations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod table;

pub use experiments::{run_all, Scale};
pub use table::ExperimentTable;
