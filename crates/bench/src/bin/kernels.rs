//! Micro-benchmarks for the word-parallel `F₂` kernels, emitting the
//! `BENCH_kernels.json` baseline that tracks the perf trajectory of the
//! packed representations.
//!
//! Measured pairs:
//!
//! * packed `BitMatrix` multiplication ([`BitMatrix::mul_f2`], plus the
//!   word-level and Four-Russians kernels individually) against the retained
//!   bool-at-a-time reference `matmul_f2_scalar`, at `d ∈ {64, 128, 256}`;
//! * the counting-semiring product of 0/1 matrices (the local kernel of the
//!   `SemiringMatMul`/`TriangleCount` protocols): the word-parallel
//!   AND+popcount path against the schoolbook `u64` triple loop, at the
//!   same dimensions;
//! * 64-assignment bit-sliced `Circuit::evaluate_batch` against 64
//!   sequential `Circuit::evaluate` calls on the Strassen `d = 8` circuit.
//!
//! Usage:
//!
//! ```text
//! cargo run -p clique-bench --release --bin kernels > BENCH_kernels.json
//! cargo run -p clique-bench --release --bin kernels -- --smoke   # CI smoke
//! ```
//!
//! Every timed result is cross-checked against the scalar oracle before it
//! is reported; a mismatch aborts the run.

use std::hint::black_box;
use std::time::Instant;

use clique_core::circuits::matmul::{matmul_f2_scalar, matmul_f2_strassen};
use clique_core::sim::linalg::{BitMatrix, IntMatrix};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Runs `f` repeatedly until the sampling budget is spent and returns the
/// mean wall-clock nanoseconds per call (at least one call always runs).
fn time_ns(budget_ms: u64, max_reps: u32, mut f: impl FnMut()) -> f64 {
    // Warm-up call, also outside the measurement.
    f();
    let budget = std::time::Duration::from_millis(budget_ms);
    let start = Instant::now();
    let mut reps = 0u32;
    while reps < max_reps && (reps == 0 || start.elapsed() < budget) {
        f();
        reps += 1;
    }
    start.elapsed().as_nanos() as f64 / f64::from(reps)
}

fn random_matrix(rng: &mut ChaCha8Rng, d: usize) -> BitMatrix {
    let rows: Vec<Vec<bool>> = (0..d)
        .map(|_| (0..d).map(|_| rng.gen_bool(0.5)).collect())
        .collect();
    BitMatrix::from_rows(&rows)
}

struct MatMulRow {
    d: usize,
    scalar_ns: f64,
    packed_ns: f64,
    word_ns: f64,
    four_russians_ns: f64,
}

impl MatMulRow {
    fn speedup(&self) -> f64 {
        self.scalar_ns / self.packed_ns
    }
}

fn bench_matmul(d: usize, budget_ms: u64, max_reps: u32, rng: &mut ChaCha8Rng) -> MatMulRow {
    let a = random_matrix(rng, d);
    let b = random_matrix(rng, d);
    let a_rows = a.to_rows();
    let b_rows = b.to_rows();

    // Correctness gate: all three packed paths must agree with the scalar
    // oracle on this instance before anything is timed.
    let expected = BitMatrix::from_rows(&matmul_f2_scalar(&a_rows, &b_rows));
    for (name, got) in [
        ("mul_f2", a.mul_f2(&b)),
        ("mul_f2_word", a.mul_f2_word(&b)),
        ("mul_f2_four_russians", a.mul_f2_four_russians(&b)),
    ] {
        assert_eq!(
            got, expected,
            "{name} disagrees with the scalar oracle at d={d}"
        );
    }

    MatMulRow {
        d,
        scalar_ns: time_ns(budget_ms, max_reps, || {
            black_box(matmul_f2_scalar(black_box(&a_rows), black_box(&b_rows)));
        }),
        packed_ns: time_ns(budget_ms, max_reps, || {
            black_box(black_box(&a).mul_f2(black_box(&b)));
        }),
        word_ns: time_ns(budget_ms, max_reps, || {
            black_box(black_box(&a).mul_f2_word(black_box(&b)));
        }),
        four_russians_ns: time_ns(budget_ms, max_reps, || {
            black_box(black_box(&a).mul_f2_four_russians(black_box(&b)));
        }),
    }
}

struct CountingRow {
    d: usize,
    scalar_ns: f64,
    popcount_ns: f64,
}

impl CountingRow {
    fn speedup(&self) -> f64 {
        self.scalar_ns / self.popcount_ns
    }
}

/// The schoolbook `u64` triple loop the popcount kernel is measured
/// against.
fn counting_scalar(a: &IntMatrix, b: &IntMatrix) -> IntMatrix {
    let d = a.rows();
    let mut out = IntMatrix::zeros(d, d);
    for i in 0..d {
        for j in 0..d {
            let mut acc = 0u64;
            for k in 0..d {
                acc += a.get(i, k) * b.get(k, j);
            }
            out.set(i, j, acc);
        }
    }
    out
}

fn bench_counting(d: usize, budget_ms: u64, max_reps: u32, rng: &mut ChaCha8Rng) -> CountingRow {
    let a_bits = random_matrix(rng, d);
    let b_bits = random_matrix(rng, d);
    let a = IntMatrix::from_bitmatrix(&a_bits);
    let b = IntMatrix::from_bitmatrix(&b_bits);

    // Correctness gate: the dispatching kernel (AND+popcount for 0/1
    // operands) must agree with the triple loop before anything is timed.
    assert_eq!(
        a.mul_counting(&b),
        counting_scalar(&a, &b),
        "counting kernel disagrees with the scalar oracle at d={d}"
    );

    CountingRow {
        d,
        scalar_ns: time_ns(budget_ms, max_reps, || {
            black_box(counting_scalar(black_box(&a), black_box(&b)));
        }),
        popcount_ns: time_ns(budget_ms, max_reps, || {
            black_box(black_box(&a).mul_counting(black_box(&b)));
        }),
    }
}

struct CircuitRow {
    assignments: usize,
    sequential_ns: f64,
    batch_ns: f64,
}

impl CircuitRow {
    fn speedup(&self) -> f64 {
        self.sequential_ns / self.batch_ns
    }
}

fn bench_circuit_eval(budget_ms: u64, max_reps: u32, rng: &mut ChaCha8Rng) -> CircuitRow {
    let mm = matmul_f2_strassen(8);
    let circuit = &mm.circuit;
    let lanes = 64usize;
    let assignments: Vec<Vec<bool>> = (0..lanes)
        .map(|_| {
            (0..circuit.inputs().len())
                .map(|_| rng.gen_bool(0.5))
                .collect()
        })
        .collect();

    // Correctness gate: every lane of the batch equals its sequential run.
    let batch = circuit.evaluate_batch(&assignments);
    for (k, assignment) in assignments.iter().enumerate() {
        assert_eq!(
            batch[k],
            circuit.evaluate(assignment),
            "evaluate_batch lane {k} disagrees with evaluate"
        );
    }

    CircuitRow {
        assignments: lanes,
        sequential_ns: time_ns(budget_ms, max_reps, || {
            for assignment in &assignments {
                black_box(circuit.evaluate(black_box(assignment)));
            }
        }),
        batch_ns: time_ns(budget_ms, max_reps, || {
            black_box(circuit.evaluate_batch(black_box(&assignments)));
        }),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    for arg in &args {
        if arg != "--smoke" {
            eprintln!("error: unknown flag {arg} (expected --smoke)");
            std::process::exit(2);
        }
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    // Smoke mode (CI) only proves the harness runs end to end; the committed
    // baseline comes from a full run.
    let (budget_ms, max_reps) = if smoke { (1, 3) } else { (300, 10_000) };

    let mut rng = ChaCha8Rng::seed_from_u64(0xF2F2);
    let matmul_rows: Vec<MatMulRow> = [64usize, 128, 256]
        .iter()
        .map(|&d| {
            eprintln!("benchmarking matmul d={d} …");
            bench_matmul(d, budget_ms, max_reps, &mut rng)
        })
        .collect();
    let counting_rows: Vec<CountingRow> = [64usize, 128, 256]
        .iter()
        .map(|&d| {
            eprintln!("benchmarking counting matmul d={d} …");
            bench_counting(d, budget_ms, max_reps, &mut rng)
        })
        .collect();
    eprintln!("benchmarking circuit eval (Strassen d=8, 64 lanes) …");
    let circuit_row = bench_circuit_eval(budget_ms, max_reps, &mut rng);

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"generated_by\": \"cargo run -p clique-bench --release --bin kernels\",\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if smoke { "smoke" } else { "full" }
    ));
    out.push_str("  \"matmul_f2\": [\n");
    for (i, row) in matmul_rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"d\": {}, \"scalar_ns\": {:.0}, \"packed_ns\": {:.0}, \"word_ns\": {:.0}, \"four_russians_ns\": {:.0}, \"speedup_packed_vs_scalar\": {:.1}}}{}\n",
            row.d,
            row.scalar_ns,
            row.packed_ns,
            row.word_ns,
            row.four_russians_ns,
            row.speedup(),
            if i + 1 < matmul_rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"matmul_counting\": [\n");
    for (i, row) in counting_rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"d\": {}, \"scalar_ns\": {:.0}, \"popcount_ns\": {:.0}, \"speedup_popcount_vs_scalar\": {:.1}}}{}\n",
            row.d,
            row.scalar_ns,
            row.popcount_ns,
            row.speedup(),
            if i + 1 < counting_rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"circuit_evaluate_batch\": {{\"circuit\": \"strassen_d8\", \"assignments\": {}, \"sequential_ns\": {:.0}, \"batch_ns\": {:.0}, \"speedup_batch_vs_sequential\": {:.1}}}\n",
        circuit_row.assignments,
        circuit_row.sequential_ns,
        circuit_row.batch_ns,
        circuit_row.speedup()
    ));
    out.push_str("}\n");
    print!("{out}");

    let d256 = matmul_rows.iter().find(|r| r.d == 256).expect("d=256 row");
    let c256 = counting_rows
        .iter()
        .find(|r| r.d == 256)
        .expect("d=256 row");
    eprintln!(
        "packed matmul speedup at d=256: {:.1}x; counting popcount speedup: {:.1}x; evaluate_batch speedup: {:.1}x",
        d256.speedup(),
        c256.speedup(),
        circuit_row.speedup()
    );
    if !smoke && (d256.speedup() < 10.0 || c256.speedup() < 10.0 || circuit_row.speedup() < 10.0) {
        eprintln!("error: expected >= 10x speedups in the full baseline run");
        std::process::exit(1);
    }
}
