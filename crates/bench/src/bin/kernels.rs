//! Micro-benchmarks for the word-parallel `F₂` kernels, emitting the
//! `BENCH_kernels.json` baseline that tracks the perf trajectory of the
//! packed representations.
//!
//! Measured pairs:
//!
//! * packed `BitMatrix` multiplication ([`BitMatrix::mul_f2`], plus the
//!   word-level and Four-Russians kernels individually) against the retained
//!   bool-at-a-time reference `matmul_f2_scalar`, at `d ∈ {64, 128, 256}`,
//!   once per lane width (`u64` and `u128`; `--lane {64,128}` restricts the
//!   sweep to one width);
//! * the cache-blocked Four-Russians kernel against the retained
//!   single-table (unblocked) walk, at `d ∈ {256, 512, 1024}`;
//! * the counting-semiring product of 0/1 matrices (the local kernel of the
//!   `SemiringMatMul`/`TriangleCount` protocols): the word-parallel
//!   AND+popcount path against the schoolbook `u64` triple loop, at the
//!   same dimensions;
//! * 64-assignment bit-sliced `Circuit::evaluate_batch` against 64
//!   sequential `Circuit::evaluate` calls on the Strassen `d = 8` circuit;
//! * the row-blocked *threaded* counting product against its own
//!   single-worker path, at the worker count of the pool (`--threads N`
//!   overrides; the row is honest about `host_parallelism`, so a 1-core
//!   host reports ~1x while the cross-check still proves the parallel path
//!   correct).
//!
//! Usage:
//!
//! ```text
//! cargo run -p clique-bench --release --bin kernels > BENCH_kernels.json
//! cargo run -p clique-bench --release --bin kernels -- --smoke      # CI smoke
//! cargo run -p clique-bench --release --bin kernels -- --threads 8  # pool size
//! cargo run -p clique-bench --release --bin kernels -- --lane 128   # one lane width only
//! ```
//!
//! Every timed result is cross-checked against the scalar oracle before it
//! is reported; a mismatch aborts the run. The smoke run additionally
//! asserts that the threaded path really executed with at least two
//! workers.

use std::hint::black_box;
use std::time::Instant;

use clique_bench::{parse_lane_flag, parse_threads_flag};
use clique_core::circuits::matmul::{matmul_f2_scalar, matmul_f2_strassen};
use clique_core::sim::lane::Word;
use clique_core::sim::linalg::{BitMatrix, IntMatrix, PAR_MIN_ROWS};
use clique_core::sim::par;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Runs `f` repeatedly until the sampling budget is spent and returns the
/// mean wall-clock nanoseconds per call (at least one call always runs).
fn time_ns(budget_ms: u64, max_reps: u32, mut f: impl FnMut()) -> f64 {
    // Warm-up call, also outside the measurement.
    f();
    let budget = std::time::Duration::from_millis(budget_ms);
    let start = Instant::now();
    let mut reps = 0u32;
    while reps < max_reps && (reps == 0 || start.elapsed() < budget) {
        f();
        reps += 1;
    }
    start.elapsed().as_nanos() as f64 / f64::from(reps)
}

fn random_matrix_lanes<W: Word>(rng: &mut ChaCha8Rng, d: usize) -> BitMatrix<W> {
    let rows: Vec<Vec<bool>> = (0..d)
        .map(|_| (0..d).map(|_| rng.gen_bool(0.5)).collect())
        .collect();
    BitMatrix::from_rows(&rows)
}

fn random_matrix(rng: &mut ChaCha8Rng, d: usize) -> BitMatrix {
    random_matrix_lanes(rng, d)
}

struct MatMulRow {
    d: usize,
    lane: usize,
    scalar_ns: f64,
    packed_ns: f64,
    word_ns: f64,
    four_russians_ns: f64,
}

impl MatMulRow {
    fn speedup(&self) -> f64 {
        self.scalar_ns / self.packed_ns
    }
}

fn bench_matmul<W: Word>(
    d: usize,
    budget_ms: u64,
    max_reps: u32,
    rng: &mut ChaCha8Rng,
) -> MatMulRow {
    let a: BitMatrix<W> = random_matrix_lanes(rng, d);
    let b: BitMatrix<W> = random_matrix_lanes(rng, d);
    let a_rows = a.to_rows();
    let b_rows = b.to_rows();

    // Correctness gate: all three packed paths must agree with the scalar
    // oracle on this instance before anything is timed.
    let expected: BitMatrix<W> = BitMatrix::from_rows(&matmul_f2_scalar(&a_rows, &b_rows));
    for (name, got) in [
        ("mul_f2", a.mul_f2(&b)),
        ("mul_f2_word", a.mul_f2_word(&b)),
        ("mul_f2_four_russians", a.mul_f2_four_russians(&b)),
    ] {
        assert_eq!(
            got, expected,
            "{name} disagrees with the scalar oracle at d={d}"
        );
    }

    MatMulRow {
        d,
        lane: W::BITS,
        scalar_ns: time_ns(budget_ms, max_reps, || {
            black_box(matmul_f2_scalar(black_box(&a_rows), black_box(&b_rows)));
        }),
        packed_ns: time_ns(budget_ms, max_reps, || {
            // One worker: this row isolates packing; threading is measured
            // by the matmul_counting_parallel rows.
            black_box(black_box(&a).mul_f2_with_threads(black_box(&b), 1));
        }),
        word_ns: time_ns(budget_ms, max_reps, || {
            black_box(black_box(&a).mul_f2_word(black_box(&b)));
        }),
        four_russians_ns: time_ns(budget_ms, max_reps, || {
            black_box(black_box(&a).mul_f2_four_russians(black_box(&b)));
        }),
    }
}

struct StrassenRow {
    d: usize,
    lane: usize,
    four_russians_ns: f64,
    strassen_ns: f64,
}

impl StrassenRow {
    fn speedup(&self) -> f64 {
        self.four_russians_ns / self.strassen_ns
    }
}

/// Benches a forced depth-1 Strassen split against the blocked
/// Four-Russians kernel it bottoms out in, on both sides of
/// `STRASSEN_MIN_DIM` — below the threshold the split loses (the leaves
/// run at worse per-bit efficiency than one big Four-Russians pass), above
/// it the saved block product dominates, which is exactly the measurement
/// the dispatch constant encodes.
fn bench_strassen<W: Word>(
    d: usize,
    budget_ms: u64,
    max_reps: u32,
    rng: &mut ChaCha8Rng,
) -> StrassenRow {
    let a: BitMatrix<W> = random_matrix_lanes(rng, d);
    let b: BitMatrix<W> = random_matrix_lanes(rng, d);

    // Correctness gate: the forced split must agree with the dispatching
    // kernel before anything is timed.
    assert_eq!(
        a.mul_f2_strassen_with_levels(&b, 1, 1),
        a.mul_f2(&b),
        "strassen kernel disagrees with the dispatcher at d={d}"
    );

    StrassenRow {
        d,
        lane: W::BITS,
        four_russians_ns: time_ns(budget_ms, max_reps, || {
            black_box(black_box(&a).mul_f2_four_russians(black_box(&b)));
        }),
        strassen_ns: time_ns(budget_ms, max_reps, || {
            // One worker, explicit depth 1: this row isolates the recursion
            // against the flat kernel independent of where the dispatch
            // threshold sits; threading is measured by the parallel rows.
            black_box(black_box(&a).mul_f2_strassen_with_levels(black_box(&b), 1, 1));
        }),
    }
}

struct CountingRow {
    d: usize,
    scalar_ns: f64,
    popcount_ns: f64,
}

impl CountingRow {
    fn speedup(&self) -> f64 {
        self.scalar_ns / self.popcount_ns
    }
}

/// The schoolbook `u64` triple loop the popcount kernel is measured
/// against.
fn counting_scalar(a: &IntMatrix, b: &IntMatrix) -> IntMatrix {
    let d = a.rows();
    let mut out = IntMatrix::zeros(d, d);
    for i in 0..d {
        for j in 0..d {
            let mut acc = 0u64;
            for k in 0..d {
                acc += a.get(i, k) * b.get(k, j);
            }
            out.set(i, j, acc);
        }
    }
    out
}

fn bench_counting(d: usize, budget_ms: u64, max_reps: u32, rng: &mut ChaCha8Rng) -> CountingRow {
    let a_bits = random_matrix(rng, d);
    let b_bits = random_matrix(rng, d);
    let a = IntMatrix::from_bitmatrix(&a_bits);
    let b = IntMatrix::from_bitmatrix(&b_bits);

    // Correctness gate: the dispatching kernel (AND+popcount for 0/1
    // operands) must agree with the triple loop before anything is timed.
    assert_eq!(
        a.mul_counting(&b),
        counting_scalar(&a, &b),
        "counting kernel disagrees with the scalar oracle at d={d}"
    );

    CountingRow {
        d,
        scalar_ns: time_ns(budget_ms, max_reps, || {
            black_box(counting_scalar(black_box(&a), black_box(&b)));
        }),
        popcount_ns: time_ns(budget_ms, max_reps, || {
            // One worker: this row isolates the popcount kernel; threading
            // is measured by the matmul_counting_parallel rows.
            black_box(black_box(&a).mul_counting_with_threads(black_box(&b), 1));
        }),
    }
}

struct ParallelRow {
    d: usize,
    threads: usize,
    serial_ns: f64,
    parallel_ns: f64,
}

impl ParallelRow {
    fn speedup(&self) -> f64 {
        self.serial_ns / self.parallel_ns
    }
}

/// Benches the row-blocked threaded counting product (0/1 operands, so the
/// AND+popcount kernel underneath) against its own single-worker path.
fn bench_counting_parallel(
    d: usize,
    threads: usize,
    budget_ms: u64,
    max_reps: u32,
    rng: &mut ChaCha8Rng,
) -> ParallelRow {
    assert!(
        d >= PAR_MIN_ROWS,
        "d={d} is below PAR_MIN_ROWS={PAR_MIN_ROWS}; the threaded path would not engage"
    );
    let a = IntMatrix::from_bitmatrix(&random_matrix(rng, d));
    let b = IntMatrix::from_bitmatrix(&random_matrix(rng, d));

    // Correctness gate: the parallel path must agree with the serial path
    // bit for bit before anything is timed.
    assert_eq!(
        a.mul_counting_with_threads(&b, threads),
        a.mul_counting_with_threads(&b, 1),
        "threaded counting product disagrees with the serial path at d={d}, threads={threads}"
    );

    ParallelRow {
        d,
        threads,
        serial_ns: time_ns(budget_ms, max_reps, || {
            black_box(black_box(&a).mul_counting_with_threads(black_box(&b), 1));
        }),
        parallel_ns: time_ns(budget_ms, max_reps, || {
            black_box(black_box(&a).mul_counting_with_threads(black_box(&b), threads));
        }),
    }
}

struct BlockedRow {
    d: usize,
    unblocked_ns: f64,
    blocked_ns: f64,
}

impl BlockedRow {
    fn speedup(&self) -> f64 {
        self.unblocked_ns / self.blocked_ns
    }
}

/// Benches the cache-blocked Four-Russians kernel against the retained
/// single-table (unblocked) walk. Single worker, per the baseline
/// convention: the row isolates the tiling, not the pool.
fn bench_four_russians_blocked(
    d: usize,
    budget_ms: u64,
    max_reps: u32,
    rng: &mut ChaCha8Rng,
) -> BlockedRow {
    let a = random_matrix(rng, d);
    let b = random_matrix(rng, d);

    // Correctness gate: the blocked and unblocked kernels must agree bit
    // for bit before anything is timed.
    assert_eq!(
        a.mul_f2_four_russians(&b),
        a.mul_f2_four_russians_unblocked(&b),
        "blocked Four-Russians disagrees with the unblocked kernel at d={d}"
    );

    BlockedRow {
        d,
        unblocked_ns: time_ns(budget_ms, max_reps, || {
            black_box(black_box(&a).mul_f2_four_russians_unblocked(black_box(&b)));
        }),
        blocked_ns: time_ns(budget_ms, max_reps, || {
            black_box(black_box(&a).mul_f2_four_russians(black_box(&b)));
        }),
    }
}

struct CircuitRow {
    assignments: usize,
    sequential_ns: f64,
    batch_ns: f64,
}

impl CircuitRow {
    fn speedup(&self) -> f64 {
        self.sequential_ns / self.batch_ns
    }
}

fn bench_circuit_eval(budget_ms: u64, max_reps: u32, rng: &mut ChaCha8Rng) -> CircuitRow {
    let mm = matmul_f2_strassen(8);
    let circuit = &mm.circuit;
    let lanes = 64usize;
    let assignments: Vec<Vec<bool>> = (0..lanes)
        .map(|_| {
            (0..circuit.inputs().len())
                .map(|_| rng.gen_bool(0.5))
                .collect()
        })
        .collect();

    // Correctness gate: every lane of the batch equals its sequential run.
    let batch = circuit.evaluate_batch(&assignments);
    for (k, assignment) in assignments.iter().enumerate() {
        assert_eq!(
            batch[k],
            circuit.evaluate(assignment),
            "evaluate_batch lane {k} disagrees with evaluate"
        );
    }

    CircuitRow {
        assignments: lanes,
        sequential_ns: time_ns(budget_ms, max_reps, || {
            for assignment in &assignments {
                black_box(circuit.evaluate(black_box(assignment)));
            }
        }),
        batch_ns: time_ns(budget_ms, max_reps, || {
            black_box(circuit.evaluate_batch(black_box(&assignments)));
        }),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut threads_flag: Option<usize> = None;
    let mut lane_flag: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--threads" => {
                threads_flag = Some(parse_threads_flag(args.get(i + 1)));
                i += 1;
            }
            "--lane" => {
                lane_flag = Some(parse_lane_flag(args.get(i + 1)));
                i += 1;
            }
            arg => {
                eprintln!("error: unknown flag {arg} (expected --smoke, --threads N or --lane W)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    par::set_threads(threads_flag);
    // The worker count the parallel rows run at: an explicit --threads is
    // honored as given; without one, the pool default is floored at 2 so
    // the row-blocked path is genuinely exercised even on a single-core
    // host. Smoke mode *requires* >= 2 workers (its contract is that the
    // threaded path ran), so --smoke --threads 1 is rejected.
    let pool_threads = threads_flag.unwrap_or_else(|| par::threads().max(2));
    if smoke && pool_threads < 2 {
        eprintln!("error: --smoke asserts the threaded path; use --threads 2 or higher");
        std::process::exit(2);
    }
    // Smoke mode (CI) only proves the harness runs end to end; the committed
    // baseline comes from a full run.
    let (budget_ms, max_reps) = if smoke { (1, 3) } else { (300, 10_000) };

    // `--lane` restricts the packed-matmul rows to one lane width; by
    // default both widths are measured (the u128 rows are the lane
    // baseline, not the default path).
    let lanes: &[usize] = match lane_flag {
        Some(64) => &[64],
        Some(128) => &[128],
        _ => &[64, 128],
    };

    let mut rng = ChaCha8Rng::seed_from_u64(0xF2F2);
    let mut matmul_rows: Vec<MatMulRow> = Vec::new();
    for &lane in lanes {
        for &d in &[64usize, 128, 256] {
            eprintln!("benchmarking matmul d={d} (u{lane} lanes) …");
            matmul_rows.push(match lane {
                64 => bench_matmul::<u64>(d, budget_ms, max_reps, &mut rng),
                _ => bench_matmul::<u128>(d, budget_ms, max_reps, &mut rng),
            });
        }
    }
    let blocked_rows: Vec<BlockedRow> = [256usize, 512, 1024]
        .iter()
        .map(|&d| {
            eprintln!("benchmarking blocked four-russians d={d} …");
            bench_four_russians_blocked(d, budget_ms, max_reps, &mut rng)
        })
        .collect();
    let mut strassen_rows: Vec<StrassenRow> = Vec::new();
    for &lane in lanes {
        for &d in &[2048usize, 4096] {
            eprintln!("benchmarking strassen matmul d={d} (u{lane} lanes) …");
            strassen_rows.push(match lane {
                64 => bench_strassen::<u64>(d, budget_ms, max_reps, &mut rng),
                _ => bench_strassen::<u128>(d, budget_ms, max_reps, &mut rng),
            });
        }
    }
    let counting_rows: Vec<CountingRow> = [64usize, 128, 256]
        .iter()
        .map(|&d| {
            eprintln!("benchmarking counting matmul d={d} …");
            bench_counting(d, budget_ms, max_reps, &mut rng)
        })
        .collect();
    let parallel_rows: Vec<ParallelRow> = [64usize, 128, 256]
        .iter()
        .map(|&d| {
            eprintln!("benchmarking threaded counting matmul d={d} ({pool_threads} workers) …");
            bench_counting_parallel(d, pool_threads, budget_ms, max_reps, &mut rng)
        })
        .collect();
    eprintln!("benchmarking circuit eval (Strassen d=8, 64 lanes) …");
    let circuit_row = bench_circuit_eval(budget_ms, max_reps, &mut rng);

    let host_parallelism = std::thread::available_parallelism().map_or(1, usize::from);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"generated_by\": \"cargo run -p clique-bench --release --bin kernels\",\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if smoke { "smoke" } else { "full" }
    ));
    out.push_str(&format!("  \"host_parallelism\": {host_parallelism},\n"));
    out.push_str("  \"matmul_f2\": [\n");
    for (i, row) in matmul_rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"d\": {}, \"lane\": {}, \"scalar_ns\": {:.0}, \"packed_ns\": {:.0}, \"word_ns\": {:.0}, \"four_russians_ns\": {:.0}, \"speedup_packed_vs_scalar\": {:.1}}}{}\n",
            row.d,
            row.lane,
            row.scalar_ns,
            row.packed_ns,
            row.word_ns,
            row.four_russians_ns,
            row.speedup(),
            if i + 1 < matmul_rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"four_russians_blocked\": [\n");
    for (i, row) in blocked_rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"d\": {}, \"unblocked_ns\": {:.0}, \"blocked_ns\": {:.0}, \"speedup_blocked_vs_unblocked\": {:.2}}}{}\n",
            row.d,
            row.unblocked_ns,
            row.blocked_ns,
            row.speedup(),
            if i + 1 < blocked_rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"matmul_f2_strassen\": [\n");
    for (i, row) in strassen_rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"d\": {}, \"lane\": {}, \"four_russians_ns\": {:.0}, \"strassen_ns\": {:.0}, \"speedup_strassen_vs_four_russians\": {:.2}}}{}\n",
            row.d,
            row.lane,
            row.four_russians_ns,
            row.strassen_ns,
            row.speedup(),
            if i + 1 < strassen_rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"matmul_counting\": [\n");
    for (i, row) in counting_rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"d\": {}, \"scalar_ns\": {:.0}, \"popcount_ns\": {:.0}, \"speedup_popcount_vs_scalar\": {:.1}}}{}\n",
            row.d,
            row.scalar_ns,
            row.popcount_ns,
            row.speedup(),
            if i + 1 < counting_rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"matmul_counting_parallel\": [\n");
    for (i, row) in parallel_rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"d\": {}, \"threads\": {}, \"serial_ns\": {:.0}, \"parallel_ns\": {:.0}, \"speedup_parallel_vs_serial\": {:.1}}}{}\n",
            row.d,
            row.threads,
            row.serial_ns,
            row.parallel_ns,
            row.speedup(),
            if i + 1 < parallel_rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"circuit_evaluate_batch\": {{\"circuit\": \"strassen_d8\", \"assignments\": {}, \"sequential_ns\": {:.0}, \"batch_ns\": {:.0}, \"speedup_batch_vs_sequential\": {:.1}}}\n",
        circuit_row.assignments,
        circuit_row.sequential_ns,
        circuit_row.batch_ns,
        circuit_row.speedup()
    ));
    out.push_str("}\n");
    print!("{out}");

    let d256 = matmul_rows.iter().find(|r| r.d == 256).expect("d=256 row");
    let c256 = counting_rows
        .iter()
        .find(|r| r.d == 256)
        .expect("d=256 row");
    let p256 = parallel_rows
        .iter()
        .find(|r| r.d == 256)
        .expect("d=256 row");
    let b512 = blocked_rows.iter().find(|r| r.d == 512).expect("d=512 row");
    eprintln!(
        "packed matmul speedup at d=256 (u{} lanes): {:.1}x; counting popcount speedup: {:.1}x; parallel counting speedup ({} workers on {} cores): {:.1}x; blocked four-russians at d=512: {:.2}x; evaluate_batch speedup: {:.1}x",
        d256.lane,
        d256.speedup(),
        c256.speedup(),
        p256.threads,
        host_parallelism,
        p256.speedup(),
        b512.speedup(),
        circuit_row.speedup()
    );
    if smoke {
        // The CI smoke contract — a >= 2-worker threaded run — is enforced
        // up front (the --smoke --threads 1 rejection) and its correctness
        // by the cross-check in `bench_counting_parallel`.
        eprintln!("smoke: parallel path exercised with {pool_threads} workers");
    }
    if !smoke && (d256.speedup() < 10.0 || c256.speedup() < 10.0 || circuit_row.speedup() < 10.0) {
        eprintln!("error: expected >= 10x speedups in the full baseline run");
        std::process::exit(1);
    }
}
