//! The `serve` harness: drives a seeded job mix through the
//! `clique-serve` job server and emits the `BENCH_serve.json` baseline.
//!
//! Three measurements:
//!
//! * **determinism** — for every distinct spec of the pool, the served
//!   record (4-worker fleet) is byte-compared against a 1-worker fleet, a
//!   direct `Runner` run at the default thread count, and a direct run
//!   pinned to 1 thread; the emitted column must be all-true (the smoke
//!   run asserts it, so CI fails on any divergence);
//! * **throughput** — a Zipf-flavoured stream of repeated jobs is served
//!   in batches; sustained jobs/sec and the transcript-cache hit-rate are
//!   reported;
//! * **warm vs cold** — the distinct specs are submitted to a cold server
//!   and then resubmitted warm; the full run asserts the warm pass is
//!   faster (cache hits skip the simulations entirely).
//!
//! Usage:
//!
//! ```text
//! cargo run -p clique-bench --release --bin serve > BENCH_serve.json
//! cargo run -p clique-bench --release --bin serve -- --smoke      # CI smoke
//! cargo run -p clique-bench --release --bin serve -- --threads 2  # fleet size
//! ```

use std::time::Instant;

use clique_bench::parse_threads_flag;
use clique_serve::{JobSpec, Server, ServerConfig};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The spec pool the job mix draws from: every registry protocol over a
/// few sizes and seeds — all small, so one job is cheap and the harness
/// measures serving overhead, not protocol asymptotics.
fn spec_pool(smoke: bool) -> Vec<JobSpec> {
    let sizes: &[usize] = if smoke { &[6, 8] } else { &[6, 9, 12, 16] };
    let seeds: &[u64] = if smoke { &[1] } else { &[1, 2] };
    let cases: &[(&str, &str)] = &[
        ("mst", "weighted_random_tree"),
        ("triangle-count", "erdos_renyi(p=0.5)"),
        ("apsp", "erdos_renyi(p=0.15)"),
        ("c4-turan-sketch", "erdos_renyi(p=0.15)"),
        ("c4-full-broadcast", "cycle"),
    ];
    let mut pool = Vec::new();
    for &(protocol, family) in cases {
        for &n in sizes {
            let b = ((n as f64).log2().ceil() as usize).max(1);
            for &seed in seeds {
                pool.push(if protocol == "mst" {
                    JobSpec::weighted(protocol, family, n, b, 2 * n as u64, seed)
                } else {
                    JobSpec::unweighted(protocol, family, n, b, seed)
                });
            }
        }
    }
    pool
}

/// One determinism row: the served record against three independent
/// recomputations.
struct DeterminismRow {
    spec: JobSpec,
    identical: bool,
}

fn check_determinism(pool: &[JobSpec]) -> Vec<DeterminismRow> {
    let mut fleet = Server::new(ServerConfig {
        workers: 4,
        batch_size: 2,
        ..ServerConfig::default()
    });
    let mut solo = Server::new(ServerConfig::default());
    let served = fleet.submit_batch(pool).expect("fleet batch failed");
    let solo_served = solo.submit_batch(pool).expect("solo batch failed");
    pool.iter()
        .zip(served.iter().zip(&solo_served))
        .map(|(spec, (fleet_result, solo_result))| {
            let direct_default = Server::run_direct(spec).expect("direct run failed");
            let direct_pinned =
                Server::run_direct(&spec.clone().with_threads(1)).expect("direct run failed");
            DeterminismRow {
                spec: spec.clone(),
                identical: fleet_result.record == solo_result.record
                    && fleet_result.record == direct_default
                    && fleet_result.record == direct_pinned,
            }
        })
        .collect()
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut threads_flag: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--threads" => {
                threads_flag = Some(parse_threads_flag(args.get(i + 1)));
                i += 1;
            }
            arg => {
                eprintln!("error: unknown flag {arg} (expected --smoke or --threads N)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    // The fleet size: an explicit --threads is honored; otherwise 4, so the
    // sharded path is genuinely exercised even on a single-core host (the
    // scoped-worker pool is deterministic at any size).
    let workers = threads_flag.unwrap_or(4);

    let pool = spec_pool(smoke);

    // Determinism: served == direct, at 1 and `workers` workers, at pinned
    // and default thread counts.
    eprintln!("checking determinism over {} specs …", pool.len());
    let determinism = check_determinism(&pool);
    let all_identical = determinism.iter().all(|row| row.identical);

    // Warm vs cold: the same distinct specs, cold then cached.
    eprintln!("timing cold vs warm pass ({workers} workers) …");
    let mut server = Server::new(ServerConfig {
        workers,
        batch_size: 4,
        ..ServerConfig::default()
    });
    let cold_start = Instant::now();
    let cold = server.submit_batch(&pool).expect("cold batch failed");
    let cold_ns = cold_start.elapsed().as_nanos() as f64;
    let warm_start = Instant::now();
    let warm = server.submit_batch(&pool).expect("warm batch failed");
    let warm_ns = warm_start.elapsed().as_nanos() as f64;
    assert!(
        cold.iter().zip(&warm).all(|(c, w)| c.record == w.record),
        "a warm record diverged from its cold run"
    );
    assert!(
        warm.iter().all(|r| r.cached),
        "a warm resubmission missed the cache"
    );

    // Throughput: a Zipf-flavoured stream with repetitions, served in
    // batches through a fresh server.
    let stream_len = if smoke { 40 } else { 400 };
    let batch = 20;
    eprintln!("serving a {stream_len}-job mixed stream …");
    let mut rng = ChaCha8Rng::seed_from_u64(0x5E17E);
    let stream: Vec<JobSpec> = (0..stream_len)
        .map(|_| {
            // Squaring the unit draw skews the stream toward the low
            // indices: a few hot jobs, a long cold tail.
            let unit: f64 = rng.gen();
            pool[((unit * unit) * pool.len() as f64) as usize % pool.len()].clone()
        })
        .collect();
    let mut stream_server = Server::new(ServerConfig {
        workers,
        batch_size: 4,
        ..ServerConfig::default()
    });
    let stream_start = Instant::now();
    for chunk in stream.chunks(batch) {
        stream_server
            .submit_batch(chunk)
            .expect("stream batch failed");
    }
    let stream_secs = stream_start.elapsed().as_secs_f64();
    let stats = stream_server.stats();
    let jobs_per_sec = stream_len as f64 / stream_secs.max(1e-9);

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"generated_by\": \"cargo run -p clique-bench --release --bin serve\",\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if smoke { "smoke" } else { "full" }
    ));
    out.push_str(&format!("  \"workers\": {workers},\n"));
    out.push_str(&format!("  \"unique_specs\": {},\n", pool.len()));
    out.push_str(&format!(
        "  \"cold_pass\": {{\"jobs\": {}, \"ms\": {:.2}}},\n",
        pool.len(),
        cold_ns / 1e6
    ));
    out.push_str(&format!(
        "  \"warm_pass\": {{\"jobs\": {}, \"ms\": {:.2}, \"speedup_vs_cold\": {:.1}}},\n",
        pool.len(),
        warm_ns / 1e6,
        cold_ns / warm_ns.max(1.0)
    ));
    out.push_str(&format!(
        "  \"stream\": {{\"jobs\": {stream_len}, \"batch\": {batch}, \"jobs_per_sec\": {jobs_per_sec:.0}, \"cache_hits\": {}, \"cache_misses\": {}, \"cache_evictions\": {}, \"hit_rate\": {:.3}}},\n",
        stats.cache.hits, stats.cache.misses, stats.cache.evictions, stats.cache.hit_rate()
    ));
    out.push_str("  \"determinism\": [\n");
    for (i, row) in determinism.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"spec\": {}, \"served_equals_direct\": {}}}{}\n",
            json_string(&row.spec.canonical_json()),
            row.identical,
            if i + 1 < determinism.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"determinism_all\": {all_identical}\n"));
    out.push_str("}\n");
    print!("{out}");

    eprintln!(
        "served {stream_len} jobs at {jobs_per_sec:.0} jobs/sec (hit rate {:.0}%); warm pass {:.1}x faster than cold; determinism: {}",
        100.0 * stats.cache.hit_rate(),
        cold_ns / warm_ns.max(1.0),
        if all_identical { "all records identical" } else { "DIVERGENCE" },
    );
    // The determinism column is the whole point of the harness: any
    // divergence fails the run, smoke or full.
    assert!(
        all_identical,
        "a served record diverged from its direct run"
    );
    if !smoke {
        // The acceptance bar for the committed baseline: cache hits must be
        // measurably cheaper than simulations.
        assert!(
            warm_ns * 2.0 < cold_ns,
            "warm pass ({warm_ns} ns) is not measurably faster than cold ({cold_ns} ns)"
        );
    }
}
