//! Regenerates every experiment table (E1–E18) of EXPERIMENTS.md.
//!
//! Usage:
//!
//! ```text
//! cargo run -p clique-bench --release --bin experiments            # full sweep
//! cargo run -p clique-bench --release --bin experiments -- --quick # smoke run
//! cargo run -p clique-bench --release --bin experiments -- E4 E7   # selected experiments
//! cargo run -p clique-bench --release --bin experiments -- --json  # machine-readable output
//! cargo run -p clique-bench --release --bin experiments -- --threads 4 # worker pool size
//! cargo run -p clique-bench --release --bin experiments -- --lane 64  # assert the lane width
//! cargo run -p clique-bench --release --bin experiments -- --list  # registered experiments
//! ```
//!
//! `--lane {64,128}` asserts the lane width the binary was compiled with
//! (the `lane128` feature switches the default from 64 to 128); a mismatch
//! exits with status 2. Tables are identical at both widths — the flag
//! exists so lane-comparison runs can prove which width they measured.

use std::time::Instant;

use clique_bench::{parse_experiments_args, ExperimentsCommand, Scale, EXPERIMENTS};
use clique_core::sim::lane::{DefaultLane, Word};
use clique_core::sim::par;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let run = match parse_experiments_args(&args) {
        Ok(ExperimentsCommand::List) => {
            let width = EXPERIMENTS
                .iter()
                .map(|e| e.id.len())
                .max()
                .unwrap_or_default();
            for entry in EXPERIMENTS {
                println!("{:width$}  {}", entry.id, entry.description);
            }
            return;
        }
        Ok(ExperimentsCommand::Run(run)) => run,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    };
    if let Some(lane) = run.lane {
        let compiled = <DefaultLane as Word>::BITS;
        if lane != compiled {
            eprintln!(
                "error: --lane {lane} requested but this binary was compiled with a \
                 {compiled}-bit default lane (toggle the `lane128` feature of clique-sim)"
            );
            std::process::exit(2);
        }
    }
    par::set_threads(run.threads);
    let scale = if run.quick { Scale::Quick } else { Scale::Full };

    let mut tables = Vec::new();
    for entry in EXPERIMENTS {
        if !run.selected.is_empty() && !run.selected.iter().any(|s| s == entry.id) {
            continue;
        }
        eprintln!("running {} ({scale:?}) …", entry.id);
        let start = Instant::now();
        let table = (entry.run)(scale);
        eprintln!("  done in {:.1?}", start.elapsed());
        tables.push(table);
    }

    if run.json {
        let objects: Vec<String> = tables.iter().map(|t| t.to_json()).collect();
        println!("[{}]", objects.join(",\n"));
    } else {
        println!("# Experiment results (congested clique reproduction)\n");
        println!(
            "Scale: {}\n",
            if run.quick {
                "quick (smoke sizes)"
            } else {
                "full"
            }
        );
        for table in &tables {
            print!("{}", table.to_markdown());
        }
    }
}
