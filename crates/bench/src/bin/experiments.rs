//! Regenerates every experiment table (E1–E15) of EXPERIMENTS.md.
//!
//! Usage:
//!
//! ```text
//! cargo run -p clique-bench --release --bin experiments            # full sweep
//! cargo run -p clique-bench --release --bin experiments -- --quick # smoke run
//! cargo run -p clique-bench --release --bin experiments -- E4 E7   # selected experiments
//! cargo run -p clique-bench --release --bin experiments -- --json  # machine-readable output
//! cargo run -p clique-bench --release --bin experiments -- --threads 4 # worker pool size
//! ```

use std::time::Instant;

use clique_bench::experiments;
use clique_bench::{parse_threads_flag, ExperimentTable, Scale};
use clique_core::sim::par;

/// One experiment: its id and the function regenerating its table.
type Experiment = (&'static str, fn(Scale) -> ExperimentTable);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut json = false;
    let mut threads: Option<usize> = None;
    let mut selected: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--json" => json = true,
            "--threads" => {
                threads = Some(parse_threads_flag(args.get(i + 1)));
                i += 1;
            }
            flag if flag.starts_with("--") => {
                eprintln!("error: unknown flag {flag} (expected --quick, --json or --threads N)");
                std::process::exit(2);
            }
            id => selected.push(id.to_uppercase()),
        }
        i += 1;
    }
    par::set_threads(threads);
    let scale = if quick { Scale::Quick } else { Scale::Full };

    let all: Vec<Experiment> = vec![
        ("E1", experiments::e1_circuit_simulation),
        ("E2", experiments::e2_routing),
        ("E3", experiments::e3_triangle_matmul),
        ("E4", experiments::e4_subgraph_turan),
        ("E5", experiments::e5_adaptive),
        ("E6", experiments::e6_lower_bound_cliques),
        ("E7", experiments::e7_lower_bound_cycles),
        ("E8", experiments::e8_lower_bound_bipartite),
        ("E9", experiments::e9_triangle_nof),
        ("E10", experiments::e10_counting),
        ("E11", experiments::e11_degeneracy_turan),
        ("E12", experiments::e12_sketch_reconstruction),
        ("E13", experiments::e13_semiring_matmul),
        ("E14", experiments::e14_parallel_scaling),
        ("E15", experiments::e15_mst_sketches),
    ];

    let known: Vec<&str> = all.iter().map(|(id, _)| *id).collect();
    for sel in &selected {
        if !known.contains(&sel.as_str()) {
            eprintln!(
                "error: unknown experiment id {sel} (expected one of {})",
                known.join(", ")
            );
            std::process::exit(2);
        }
    }

    let mut tables = Vec::new();
    for (id, run) in all {
        if !selected.is_empty() && !selected.iter().any(|s| s == id) {
            continue;
        }
        eprintln!("running {id} ({scale:?}) …");
        let start = Instant::now();
        let table = run(scale);
        eprintln!("  done in {:.1?}", start.elapsed());
        tables.push(table);
    }

    if json {
        let objects: Vec<String> = tables.iter().map(ExperimentTable::to_json).collect();
        println!("[{}]", objects.join(",\n"));
    } else {
        println!("# Experiment results (congested clique reproduction)\n");
        println!(
            "Scale: {}\n",
            if quick { "quick (smoke sizes)" } else { "full" }
        );
        for table in &tables {
            print!("{}", table.to_markdown());
        }
    }
}
