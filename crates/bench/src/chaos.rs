//! The chaos differential harness: every outcome served under a seeded
//! fault schedule must be **byte-identical to the fault-free run or a
//! clean typed error** — never silently wrong.
//!
//! [`run_chaos_cell`] drives one cell of the sweep: a pool of job specs is
//! submitted to a [`Server`] configured with a seeded
//! [`FaultPlan`] (one fault kind or a mix, at a parts-per-million rate)
//! and bounded retries; every `Ok` outcome is byte-compared against the
//! fault-free [`Server::run_direct`] reference, every `Err` outcome is
//! checked to be a typed failure class the recovery layer is allowed to
//! emit. The resulting [`ChaosReport`] carries the detection and recovery
//! counters E17 tabulates, and the whole cell is a pure function of
//! `(specs, kinds, seed, rate, retries)` — rerunning it replays the exact
//! same faults, retries and outcomes.

use clique_core::sim::transport::{FaultKind, FaultPlan};
use clique_serve::{JobSpec, ServeError, Server, ServerConfig};

/// What happened to one pool of jobs under one seeded fault plan.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosReport {
    /// Label of the injected kind set (a single kind name or `"mixed"`).
    pub kinds: String,
    /// Injection rate in parts per million of deliveries.
    pub rate_ppm: u32,
    /// Jobs submitted.
    pub jobs: usize,
    /// Jobs that came back `Ok`.
    pub served: usize,
    /// Served records that matched the fault-free reference byte-for-byte.
    pub served_identical: usize,
    /// Served records that *diverged* from the reference — the harness
    /// exists to pin this at zero.
    pub silently_wrong: usize,
    /// Jobs that came back as a typed failure.
    pub typed_failures: usize,
    /// Typed failures outside the classes chaos is allowed to produce
    /// (quarantine after transport faults/panics) — also pinned at zero.
    pub unexpected_failures: usize,
    /// Attempts that failed with a detected transport fault.
    pub faults_detected: u64,
    /// Re-executions beyond first attempts.
    pub retries: u64,
    /// Jobs that failed at least once and then succeeded on a retry.
    pub recovered: u64,
    /// Jobs that exhausted their retries and were quarantined.
    pub quarantined: u64,
}

impl ChaosReport {
    /// Fraction of damaged outcomes that surfaced as typed errors instead
    /// of silent corruption; `None` when the plan injected nothing.
    pub fn detection_rate(&self) -> Option<f64> {
        let damaged = self.faults_detected + self.silently_wrong as u64;
        (damaged > 0).then(|| self.faults_detected as f64 / damaged as f64)
    }

    /// Fraction of faulted jobs the retry layer brought back; `None` when
    /// no job ever faulted.
    pub fn recovery_rate(&self) -> Option<f64> {
        let faulted = self.recovered + self.quarantined;
        (faulted > 0).then(|| self.recovered as f64 / faulted as f64)
    }

    /// The never-silently-wrong invariant: every outcome was either
    /// byte-identical to fault-free or a clean typed error.
    pub fn never_silently_wrong(&self) -> bool {
        self.silently_wrong == 0 && self.unexpected_failures == 0
    }
}

/// The protocol pool the chaos sweep exercises: four registry protocols
/// spanning both engines and both input kinds.
pub const CHAOS_PROTOCOLS: &[(&str, &str)] = &[
    ("mst", "weighted_random_tree"),
    ("triangle-count", "erdos_renyi(p=0.5)"),
    ("apsp", "erdos_renyi(p=0.15)"),
    ("c4-turan-sketch", "erdos_renyi(p=0.15)"),
];

/// Builds the job pool for one sweep: every [`CHAOS_PROTOCOLS`] entry at
/// every size and seed, bandwidth 8.
pub fn chaos_job_pool(sizes: &[usize], seeds: &[u64]) -> Vec<JobSpec> {
    let mut specs = Vec::new();
    for &(protocol, family) in CHAOS_PROTOCOLS {
        for &n in sizes {
            for &seed in seeds {
                specs.push(if protocol == "mst" {
                    JobSpec::weighted(protocol, family, n, 8, 2 * n as u64, seed)
                } else {
                    JobSpec::unweighted(protocol, family, n, 8, seed)
                });
            }
        }
    }
    specs
}

/// Is `err` a failure class the chaos recovery layer is allowed to emit?
/// Injected faults surface as quarantines (after exhausted retries) whose
/// cause chain bottoms out in a transport fault or an isolated panic.
fn is_expected_chaos_failure(err: &ServeError) -> bool {
    match err {
        ServeError::Quarantined { cause, .. } => is_expected_chaos_failure(cause),
        ServeError::Sim(sim) => {
            matches!(sim, clique_core::sim::SimError::TransportFault { .. })
        }
        ServeError::Panic { .. } => true,
        _ => false,
    }
}

/// Runs one cell of the chaos sweep. See the module docs for the contract;
/// `kinds_label` only names the row (pass the kind's name, or `"mixed"`).
///
/// # Panics
///
/// Panics if the fault-free reference run of a spec fails — the pool must
/// contain only valid specs.
pub fn run_chaos_cell(
    specs: &[JobSpec],
    kinds: &[FaultKind],
    kinds_label: &str,
    seed: u64,
    rate_ppm: u32,
    max_retries: u32,
) -> ChaosReport {
    let mut server = Server::new(ServerConfig {
        workers: 2,
        max_retries,
        chaos: Some(FaultPlan::new(seed, rate_ppm, kinds)),
        ..ServerConfig::default()
    });
    let outcomes = server.submit_jobs(specs);
    let mut report = ChaosReport {
        kinds: kinds_label.to_owned(),
        rate_ppm,
        jobs: specs.len(),
        served: 0,
        served_identical: 0,
        silently_wrong: 0,
        typed_failures: 0,
        unexpected_failures: 0,
        faults_detected: 0,
        retries: 0,
        recovered: 0,
        quarantined: 0,
    };
    for outcome in &outcomes {
        match &outcome.result {
            Ok(result) => {
                report.served += 1;
                let reference =
                    Server::run_direct(&outcome.spec).expect("fault-free reference run failed");
                if result.record == reference {
                    report.served_identical += 1;
                } else {
                    report.silently_wrong += 1;
                }
            }
            Err(err) => {
                report.typed_failures += 1;
                if !is_expected_chaos_failure(err) {
                    report.unexpected_failures += 1;
                }
            }
        }
    }
    let faults = server.stats().faults;
    report.faults_detected = faults.faults_detected;
    report.retries = faults.retries;
    report.recovered = faults.recovered;
    report.quarantined = faults.quarantined;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use clique_core::sim::transport::INJECTABLE_FAULTS;

    fn small_pool() -> Vec<JobSpec> {
        chaos_job_pool(&[6, 7], &[1])
    }

    #[test]
    fn zero_rate_cell_is_byte_identical_and_fault_free() {
        let report = run_chaos_cell(&small_pool(), &INJECTABLE_FAULTS, "mixed", 7, 0, 3);
        assert_eq!(report.served_identical, report.jobs);
        assert_eq!(report.typed_failures, 0);
        assert_eq!(report.faults_detected, 0);
        assert!(report.never_silently_wrong());
        assert!(report.detection_rate().is_none(), "nothing was injected");
    }

    #[test]
    fn saturated_cell_is_never_silently_wrong() {
        // Every delivery faults on every attempt: nothing can be served,
        // but every failure must still be typed.
        let report = run_chaos_cell(&small_pool(), &INJECTABLE_FAULTS, "mixed", 7, 1_000_000, 1);
        assert_eq!(report.served, 0);
        assert_eq!(report.typed_failures, report.jobs);
        assert!(report.never_silently_wrong());
        assert_eq!(report.detection_rate(), Some(1.0));
        assert_eq!(report.recovery_rate(), Some(0.0));
    }

    #[test]
    fn chaos_cells_replay_deterministically() {
        let pool = small_pool();
        let a = run_chaos_cell(&pool, &[FaultKind::Corrupt], "corrupt", 3, 120_000, 4);
        let b = run_chaos_cell(&pool, &[FaultKind::Corrupt], "corrupt", 3, 120_000, 4);
        assert_eq!(a, b, "a seeded chaos cell replayed differently");
        assert!(a.never_silently_wrong());
    }
}
