//! Differential oracle testing: protocols vs. sequential reference code.
//!
//! The protocols in `clique-core` all have cheap sequential oracles
//! (`iso::triangle_count`, `iso::bfs_distances`,
//! `iso::minimum_spanning_forest`, …). This module provides the shared
//! harness that pins a protocol to its oracle over a *seeded grid* of graph
//! families: every case is labelled `(family, n, seed)` so a failure
//! reproduces with one generator call, and all mismatches in a grid are
//! collected before the harness panics, so one run shows the whole failure
//! pattern rather than its first point.
//!
//! The grids are deterministic (seeded [`ChaCha8Rng`] per case), so the
//! same cases run in the oracle-grid integration test, under varying
//! `CLIQUE_THREADS`-style worker counts, and in CI.

use clique_core::graphs::weighted::{self, WeightedGraph};
use clique_core::graphs::{generators, Graph};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt::Debug;

/// One grid point: a generated input labelled by how to regenerate it.
#[derive(Clone, Debug)]
pub struct LabeledCase<I> {
    /// Generator family name, e.g. `"erdos_renyi(p=0.2)"`.
    pub family: &'static str,
    /// Number of vertices of the generated graph.
    pub n: usize,
    /// The RNG seed the case was generated from (0 for deterministic
    /// families).
    pub seed: u64,
    /// The generated input itself.
    pub input: I,
}

impl<I> LabeledCase<I> {
    fn label(&self) -> String {
        format!(
            "(family: {}, n: {}, seed: {:#x})",
            self.family, self.n, self.seed
        )
    }
}

/// The standard unweighted grid: deterministic families at every size plus
/// seeded random families at every `(size, seed)` pair.
pub fn unweighted_grid(sizes: &[usize], seeds: &[u64]) -> Vec<LabeledCase<Graph>> {
    let mut cases = Vec::new();
    for &n in sizes {
        for (family, input) in [
            ("path", generators::path(n)),
            ("cycle", generators::cycle(n)),
            ("star", generators::star(n.saturating_sub(1))),
            ("complete", generators::complete(n)),
        ] {
            cases.push(LabeledCase {
                family,
                n,
                seed: 0,
                input,
            });
        }
        for &seed in seeds {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            for (family, input) in [
                (
                    "erdos_renyi(p=0.15)",
                    generators::erdos_renyi(n, 0.15, &mut rng),
                ),
                (
                    "erdos_renyi(p=0.5)",
                    generators::erdos_renyi(n, 0.5, &mut rng),
                ),
                ("random_tree", generators::random_tree(n, &mut rng)),
            ] {
                cases.push(LabeledCase {
                    family,
                    n,
                    seed,
                    input,
                });
            }
        }
    }
    cases
}

/// The standard weighted grid over the same family mix, with weights drawn
/// uniformly from `1..=max_weight` (small `max_weight` forces duplicate
/// weights, exercising the `(w, u, v)` tie-break).
pub fn weighted_grid(
    sizes: &[usize],
    seeds: &[u64],
    max_weight: u64,
) -> Vec<LabeledCase<WeightedGraph>> {
    let mut cases = Vec::new();
    for &n in sizes {
        for &seed in seeds {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            for (family, input) in [
                (
                    "weighted_path",
                    weighted::weighted_path(n, max_weight, &mut rng),
                ),
                (
                    "weighted_cycle",
                    weighted::weighted_cycle(n, max_weight, &mut rng),
                ),
                (
                    "weighted_star",
                    weighted::weighted_star(n.saturating_sub(1), max_weight, &mut rng),
                ),
                (
                    "weighted_random_tree",
                    weighted::weighted_random_tree(n, max_weight, &mut rng),
                ),
                (
                    "weighted_erdos_renyi(p=0.2)",
                    weighted::weighted_erdos_renyi(n, 0.2, max_weight, &mut rng),
                ),
                (
                    "constant_weights(complete)",
                    weighted::constant_weights(&generators::complete(n), max_weight),
                ),
            ] {
                cases.push(LabeledCase {
                    family,
                    n,
                    seed,
                    input,
                });
            }
        }
    }
    cases
}

/// Runs `protocol` and `oracle` on every case and panics with the full list
/// of failing `(family, n, seed)` labels if any outputs differ.
///
/// `what` names the comparison in the failure report (e.g.
/// `"MstProtocol vs Kruskal"`).
///
/// # Panics
///
/// Panics if any grid point mismatches, listing every failing case.
pub fn assert_protocol_matches_oracle<I, O, P, Q>(
    what: &str,
    cases: &[LabeledCase<I>],
    mut protocol: P,
    mut oracle: Q,
) where
    O: PartialEq + Debug,
    P: FnMut(&I) -> O,
    Q: FnMut(&I) -> O,
{
    let mut failures = Vec::new();
    for case in cases {
        let got = protocol(&case.input);
        let want = oracle(&case.input);
        if got != want {
            failures.push(format!(
                "  {}: protocol produced {:?}, oracle produced {:?}",
                case.label(),
                got,
                want
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "{what}: {} of {} grid cases disagree with the oracle:\n{}",
        failures.len(),
        cases.len(),
        failures.join("\n")
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_are_deterministic() {
        let a = unweighted_grid(&[6, 9], &[1, 2]);
        let b = unweighted_grid(&[6, 9], &[1, 2]);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.family, x.n, x.seed), (y.family, y.n, y.seed));
            assert_eq!(x.input, y.input);
        }
        let a = weighted_grid(&[6], &[3], 4);
        let b = weighted_grid(&[6], &[3], 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                x.input.edges().collect::<Vec<_>>(),
                y.input.edges().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn matching_outputs_pass() {
        let cases = unweighted_grid(&[5], &[7]);
        assert_protocol_matches_oracle(
            "edge count vs itself",
            &cases,
            |g: &Graph| g.edge_count(),
            |g: &Graph| g.edge_count(),
        );
    }

    #[test]
    fn mismatches_report_family_size_and_seed() {
        let cases = vec![LabeledCase {
            family: "star",
            n: 4,
            seed: 0xABC,
            input: generators::star(3),
        }];
        let err = std::panic::catch_unwind(|| {
            assert_protocol_matches_oracle(
                "broken vs truth",
                &cases,
                |g: &Graph| g.edge_count() + 1,
                |g: &Graph| g.edge_count(),
            );
        })
        .unwrap_err();
        let message = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(message.contains("broken vs truth"), "{message}");
        assert!(message.contains("family: star"), "{message}");
        assert!(message.contains("seed: 0xabc"), "{message}");
    }
}
